"""Benchmark scenario implementations for ``python -m repro.bench``.

Each ``run_*`` function is pure measurement: it builds its workload,
runs it, and returns a JSON-serializable dict.  Wall-clock numbers are
the **minimum over ``repeats`` runs** (the standard way to suppress
scheduler noise); correctness-sensitive quantities (move counters,
outcome tallies) are additionally cross-checked between the engine and
legacy configurations, so a benchmark run doubles as an equivalence
check.

Every entry point constructs its engine through the session layer
(``SessionConfig``/``ControllerSession`` — see ``repro.service`` and
docs §7); the ``session`` scenario additionally measures the session
layer's own tax against direct protocol calls.
"""

import cProfile
import dataclasses
import gc
import math
import pstats
import random
import threading
import time
import zlib
from typing import Any, Dict, List, Optional

from repro.core import kernel as controller_kernel
from repro.core.packages import MobilePackage, NodeStore
from repro.core.params import ControllerParams
from repro.core.requests import Request, RequestKind
from repro.distributed.faults import parse_fault_spec
from repro.errors import ConfigError, InvariantViolation, ProtocolError
from repro.metrics.fitting import log_log_slope, observation_3_4_bound
from repro.gateway import Gateway, GatewayConfig
from repro.metrics.counters import MemoryAudit
from repro.metrics.invariants import (
    CounterWatch,
    InvariantReport,
    audit_gateway,
    tally_outcomes,
)
from repro.registry import CONTROLLER_FLAVORS, make_controller
from repro.service import (
    ControllerSession,
    ControllerSpec,
    SessionConfig,
    drive_scenario,
    replay_stream,
)
from repro.sim.policies import SCHEDULE_POLICIES
from repro.workloads.catalogue import CATALOGUE, get_scenario
from repro.workloads.scenarios import (
    NodePicker,
    TreeMirror,
    build_caterpillar,
    build_path,
    build_random_tree,
    build_star,
    default_mix,
    grow_only_mix,
    random_request,
    request_spec,
)

DEFAULT_SIZES = [200, 400, 800, 1600, 3200]  # the bench_e02 sweep

_TOPOLOGIES = {
    "path": build_path,
    "random": build_random_tree,
    "star": build_star,
    "caterpillar": build_caterpillar,
}

_MIXES = {
    "default": default_mix,
    "grow": grow_only_mix,
    "plain": lambda: {RequestKind.PLAIN: 1.0},
}


def _build(topology: str, n: int, seed: int, skip_ancestry: bool):
    builder = _TOPOLOGIES[topology]
    if builder is build_random_tree:
        tree = builder(n, seed=seed)
    else:
        tree = builder(n)
    tree.skip_ancestry = skip_ancestry
    return tree


def _session(kind: str, tree, m: int, w: int, u: int, *,
             window: int = 1 << 20, **knobs: Any) -> ControllerSession:
    """Session-backed construction: every bench entry point wires its
    engine through ``SessionConfig``/``ControllerSession`` (the window
    defaults wide open — benches measure the engine, not admission)."""
    config = SessionConfig.of(kind, m=m, w=w, u=u,
                              max_in_flight=window, **knobs)
    return ControllerSession(config, tree=tree)


# ----------------------------------------------------------------------
# ancestry — the acceptance benchmark of the request engine.
# ----------------------------------------------------------------------
def run_ancestry(sizes: Optional[List[int]] = None, repeats: int = 3,
                 seed: int = 0, steps_per_node: int = 2) -> Dict:
    """Deep-path request serving: engine vs legacy wall clock.

    A path of ``n`` nodes receives ``n * steps_per_node`` PLAIN requests
    at uniformly random nodes (a pre-generated stream — PLAIN requests
    leave the topology untouched, so the identical stream is replayed
    in both modes and only the controller is timed):

    * **legacy** — ``skip_ancestry=False``: the seed's data paths
      (naive parent-pointer walks, dict store probes, full filler
      climbs), driven one request at a time (``session.serve``);
    * **engine** — ``skip_ancestry=True``: skip-pointer jump tables,
      slot-pinned stores, the indexed filler scan, driven as one
      batch (``session.serve_stream``).

    Both modes run behind a :class:`ControllerSession`; move counters
    and grant tallies are asserted identical between them, and the
    headline is the wall-clock ratio on the deepest path.
    """
    sizes = sizes or DEFAULT_SIZES
    rows = []
    for n in sizes:
        steps = n * steps_per_node
        timings = {}
        checks = {}
        for label, skip in (("legacy", False), ("engine", True)):
            best = None
            for _ in range(max(repeats, 1)):
                tree = _build("path", n, seed, skip)
                nodes = list(tree.nodes())
                rng = random.Random(seed + n)
                requests = [
                    Request(RequestKind.PLAIN,
                            nodes[rng.randrange(len(nodes))])
                    for _ in range(steps)
                ]
                session = _session("iterated", tree,
                                   m=4 * n, w=n // 4, u=2 * n)
                start = time.perf_counter()
                if skip:
                    records = session.serve_stream(requests)
                else:
                    records = [session.serve(request)
                               for request in requests]
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
                checks[label] = (
                    session.controller.counters.total,
                    sum(1 for r in records if r.granted),
                )
            timings[label] = best
        if checks["legacy"] != checks["engine"]:
            raise InvariantViolation(
                f"engine diverged from legacy at n={n}: "
                f"{checks['engine']} != {checks['legacy']}"
            )
        rows.append({
            "n": n,
            "steps": steps,
            "legacy_ms": round(timings["legacy"] * 1000, 3),
            "engine_ms": round(timings["engine"] * 1000, 3),
            "speedup": round(timings["legacy"] / timings["engine"], 3),
            "moves": checks["engine"][0],
            "granted": checks["engine"][1],
        })
    return {
        "scenario": "ancestry",
        "params": {"sizes": sizes, "repeats": repeats, "seed": seed,
                   "steps_per_node": steps_per_node},
        "rows": rows,
        "deep_path_speedup": rows[-1]["speedup"],
        "max_speedup": max(r["speedup"] for r in rows),
    }


# ----------------------------------------------------------------------
# move_complexity — the bench_e02 sweep as a CLI one-liner.
# ----------------------------------------------------------------------
def run_move_complexity(sizes: Optional[List[int]] = None,
                        seed: int = 0) -> Dict:
    """Observation 3.4 on deep paths: moves vs ``O(U log^2 U log(M/W))``.

    Mirrors ``benchmarks/bench_e02_move_complexity.py``: sweep the path
    length under the default churn mix and report measured/bound ratios
    plus the log-log slope (near-linear growth expected).
    """
    sizes = sizes or DEFAULT_SIZES
    rows = []
    measured = []
    for n in sizes:
        tree = build_path(n)
        u, m, w = 2 * n, 4 * n, n // 4
        session = _session("iterated", tree, m=m, w=w, u=u)
        start = time.perf_counter()
        result = drive_scenario(session, steps=n, seed=n)
        elapsed = time.perf_counter() - start
        bound = observation_3_4_bound(u, m, w)
        moves = session.controller.counters.total
        measured.append(moves)
        rows.append({
            "n": n, "u": u, "m": m, "w": w,
            "moves": moves,
            "bound": int(bound),
            "ratio": round(moves / bound, 4),
            "granted": result.granted,
            "rejected": result.rejected,
            "wall_ms": round(elapsed * 1000, 3),
        })
    return {
        "scenario": "move_complexity",
        "params": {"sizes": sizes, "seed": seed},
        "rows": rows,
        "log_log_slope": round(log_log_slope(sizes, measured), 4),
        "max_ratio": max(r["ratio"] for r in rows),
    }


# ----------------------------------------------------------------------
# batch — handle_batch equivalence + throughput on a twin tree.
# ----------------------------------------------------------------------
def run_batch(n: int = 600, steps: int = 2000, batch_size: int = 64,
              topology: str = "random", mix: str = "default",
              seed: int = 0) -> Dict:
    """Sequential vs batched handling of the *same* request stream.

    Session A is driven one request at a time while the stream is
    recorded as tree-independent specs; session B (on a twin tree built
    identically) replays the stream in ``batch_size`` chunks through
    ``serve_stream`` via a lazily-resolved :class:`TreeMirror`.
    Outcomes, grant tallies and move counters must match exactly — that
    equality is the batch-semantics contract — and both wall clocks are
    reported.
    """
    mix_map = _MIXES[mix]()
    tree_a = _build(topology, n, seed, True)
    tree_b = _build(topology, n, seed, True)
    u, m, w = 4 * n, 4 * n, max(n // 4, 1)
    session_a = _session("iterated", tree_a, m=m, w=w, u=u)
    session_b = _session("iterated", tree_b, m=m, w=w, u=u)

    rng = random.Random(seed)
    picker = NodePicker(tree_a)
    mirror = TreeMirror(tree_b)
    records_a = []
    specs = []
    start = time.perf_counter()
    sequential_time = 0.0
    for _ in range(steps):
        request = random_request(tree_a, rng, mix=mix_map, picker=picker)
        specs.append(request_spec(request))
        t0 = time.perf_counter()
        records_a.append(session_a.serve(request))
        sequential_time += time.perf_counter() - t0
    generation_time = time.perf_counter() - start - sequential_time
    picker.detach()

    records_b = []
    start = time.perf_counter()
    for base in range(0, len(specs), batch_size):
        chunk = specs[base:base + batch_size]
        records_b.extend(session_b.serve_stream(mirror.requests(chunk)))
    batched_time = time.perf_counter() - start
    mirror.detach()

    status_a = [r.verdict.value for r in records_a]
    status_b = [r.verdict.value for r in records_b]
    if status_a != status_b:
        first = next(i for i, (a, b) in enumerate(zip(status_a, status_b))
                     if a != b)
        raise InvariantViolation(
            f"batched outcome diverged at step {first}: "
            f"{status_a[first]} != {status_b[first]}"
        )
    counters_a = session_a.controller.counters
    counters_b = session_b.controller.counters
    if counters_a.snapshot() != counters_b.snapshot():
        raise InvariantViolation(
            f"batched counters diverged: {counters_b.snapshot()} "
            f"!= {counters_a.snapshot()}"
        )
    tally = session_a.tally()
    return {
        "scenario": "batch",
        "params": {"n": n, "steps": steps, "batch_size": batch_size,
                   "topology": topology, "mix": mix, "seed": seed},
        "sequential_ms": round(sequential_time * 1000, 3),
        "batched_ms": round(batched_time * 1000, 3),
        "generation_ms": round(generation_time * 1000, 3),
        "granted": tally["granted"],
        "rejected": tally["rejected"],
        "moves": counters_a.total,
        "outcomes_identical": True,
        "counters_identical": True,
        "requests_per_sec_batched": round(
            steps / batched_time if batched_time > 0 else float("inf"), 1),
    }


# ----------------------------------------------------------------------
# scenario — the generic knob-driven run.
# ----------------------------------------------------------------------
def run_scenario_bench(topology: str = "random", controller: str = "iterated",
                       mix: str = "default", n: int = 500, steps: int = 1000,
                       batch_size: int = 1, seed: int = 0,
                       skip_ancestry: bool = True,
                       m_factor: int = 4, w_divisor: int = 4) -> Dict:
    """Run one controller/topology/mix combination at a given scale."""
    tree = _build(topology, n, seed, skip_ancestry)
    u = 4 * n
    m = m_factor * n
    w = max(n // w_divisor, 1)
    session = _session(controller, tree, m, w, u)
    start = time.perf_counter()
    result = drive_scenario(session, steps=steps, seed=seed,
                            mix=_MIXES[mix](), batch_size=batch_size)
    elapsed = time.perf_counter() - start
    counters = session.controller.counters.snapshot()
    return {
        "scenario": "scenario",
        "params": {"topology": topology, "controller": controller,
                   "mix": mix, "n": n, "steps": steps,
                   "batch_size": batch_size, "seed": seed,
                   "skip_ancestry": skip_ancestry, "m": m, "w": w, "u": u},
        "granted": result.granted,
        "rejected": result.rejected,
        "cancelled": result.cancelled,
        "pending": result.pending,
        "counters": counters,
        "tree_size": tree.size,
        "wall_ms": round(elapsed * 1000, 3),
        "requests_per_sec": round(
            steps / elapsed if elapsed > 0 else float("inf"), 1),
    }


# ----------------------------------------------------------------------
# distributed_batch — the request queue of the distributed engine.
# ----------------------------------------------------------------------
def run_distributed_batch(sizes: Optional[List[int]] = None,
                          requests_per_node: float = 0.5,
                          seed: int = 0) -> Dict:
    """Pipeline a concurrent batch through the distributed engine.

    All requests are injected up front (``submit_many`` on a
    distributed :class:`ControllerSession`); agents interleave under
    the locking discipline and the session drains the scheduler to
    quiescence.  Reported: grant tallies, message counters, and the
    simulated-time compression vs serving the batch one request at a
    time (sequential lower bound: the sum of per-request round trips).
    """
    sizes = sizes or [200, 400]
    rows = []
    for n in sizes:
        tree = build_random_tree(n, seed=seed)
        rng = random.Random(seed + n)
        nodes = list(tree.nodes())
        count = max(int(n * requests_per_node), 1)
        requests = [
            Request(RequestKind.PLAIN, nodes[rng.randrange(len(nodes))])
            for _ in range(count)
        ]
        session = _session("distributed", tree, m=4 * n, w=n, u=2 * n)
        start = time.perf_counter()
        records = replay_stream(session, requests)
        elapsed = time.perf_counter() - start
        rows.append({
            "n": n,
            "requests": count,
            "granted": sum(1 for r in records if r.granted),
            "rejected": session.controller.rejected,
            "messages": session.controller.counters.total,
            "simulated_time": round(session.now, 3),
            "wall_ms": round(elapsed * 1000, 3),
        })
    return {
        "scenario": "distributed_batch",
        "params": {"sizes": sizes, "requests_per_node": requests_per_node,
                   "seed": seed},
        "rows": rows,
    }


# ----------------------------------------------------------------------
# scenario_grid — the adversarial catalogue x policy x seed sweep.
# ----------------------------------------------------------------------
# One shared tally shape everywhere (bench cells, differential checks):
# the exported repro.metrics.tally_outcomes.
_tally = tally_outcomes


def _cell_seed(*parts) -> int:
    """Stable per-cell seed (crc32, immune to PYTHONHASHSEED)."""
    return zlib.crc32(":".join(str(p) for p in parts).encode()) & 0x7FFFFFFF


def _materialize(spec, seed: int):
    """Build the reference tree and record the stream as replayable specs."""
    tree = spec.build_tree(seed=seed)
    stream = spec.stream(tree, seed=seed)
    return [request_spec(r) for r in stream]


def _replay_requests(spec, seed: int, stream_specs):
    """A fresh twin tree plus the stream resolved against it."""
    tree = spec.build_tree(seed=seed)
    mirror = TreeMirror(tree)
    requests = [mirror.request(s) for s in stream_specs]
    mirror.detach()
    return tree, requests


def run_scenario_grid(name: str = "all",
                      policy: str = "fifo,random,adversary",
                      seeds: str = "0,1,2,3,4",
                      faults: Optional[str] = None,
                      engines: str = "iterated,distributed",
                      delays: str = "uniform",
                      stagger: float = 0.25,
                      scale: float = 1.0,
                      fast_path: bool = False) -> Dict:
    """The adversarial grid: scenario x engine x schedule policy x seed.

    Every cell replays the *identical* pre-generated stream (recorded as
    tree-independent specs, resolved against a twin tree per cell).
    Centralized-family engines ignore the schedule policy (they are
    synchronous) and run once per scenario x seed; the distributed
    engine runs once per policy, optionally under a fault plan
    (``faults`` spec string, e.g. ``"stall=0.05,pauses=2,storms=3"``;
    an unset horizon auto-resolves per cell to the run's span).  The
    differential reference is the *first core engine listed* in
    ``engines`` (iterated by default); ``summary.differential_checks``
    records how many cross-checks actually ran — 0 when no core engine
    is in the list.

    Each cell is audited by the invariant checker (safety, waste,
    conservation, package shape, lock ordering) plus a streaming
    counter-monotonicity watch; cancellation-free scenarios additionally
    cross-check the distributed grant totals against the centralized
    reference (equal when nothing was rejected, both within the waste
    window otherwise).  The run **raises** on any violation — a bench
    invocation doubles as a correctness gate — and the JSON document
    records the full per-cell evidence.

    ``fast_path=True`` adds a fourth arm: every distributed FIFO cell
    re-runs on the fast-path engine with the *same cell seed* (so the
    delay draws are identical) and the grid asserts the two cells agree
    on every tally field, the message cost, and the final simulated
    clock — the trace-identical equivalence contract, checked across
    the whole adversarial catalogue.
    """
    names = list(CATALOGUE) if name == "all" else [
        part.strip() for part in name.split(",") if part.strip()]
    for scenario_name in names:
        get_scenario(scenario_name)  # fail fast on typos, before any cell
    policies = [part.strip() for part in policy.split(",") if part.strip()]
    for pol in policies:
        if pol not in SCHEDULE_POLICIES:
            raise ConfigError(
                f"unknown policy {pol!r}; known: {', '.join(SCHEDULE_POLICIES)}")
    seed_list = [int(part) for part in str(seeds).split(",") if part != ""]
    # Engines resolve against the public controller registry; ``all``
    # sweeps every registered flavour.  Validation is eager — before any
    # cell runs — so a typo fails in milliseconds, not mid-grid.
    if engines.strip() == "all":
        engine_list = list(CONTROLLER_FLAVORS)
    else:
        engine_list = [part.strip().replace("-", "_")
                       for part in engines.split(",") if part.strip()]
    for engine in engine_list:
        if engine not in CONTROLLER_FLAVORS:
            raise ConfigError(
                f"unknown engine {engine!r}; registered controller "
                f"flavors: {', '.join(CONTROLLER_FLAVORS)} (or 'all')")
    fault_plan = parse_fault_spec(faults)

    cells: List[Dict] = []
    grid_report = InvariantReport()
    start_all = time.perf_counter()
    for scenario_name in names:
        spec = get_scenario(scenario_name)
        if scale != 1.0:
            spec = spec.scaled(scale)
        for seed in seed_list:
            stream_specs = _materialize(spec, seed)
            reference: Optional[Dict] = None
            stream_cancel_free = all(
                kind in (RequestKind.PLAIN, RequestKind.ADD_LEAF)
                for kind, _node, _child in stream_specs)
            for engine in engine_list:
                if engine != "distributed":
                    cell = _run_core_cell(spec, seed, engine, stream_specs,
                                          grid_report)
                    if reference is None:
                        reference = cell
                    cells.append(cell)
                    continue
                for pol in policies:
                    cell = _run_distributed_cell(
                        spec, seed, pol, stream_specs, fault_plan, delays,
                        stagger, grid_report)
                    _cross_check(cell, spec, reference,
                                 stream_cancel_free, fault_plan, grid_report)
                    cells.append(cell)
                    if fast_path and pol == "fifo":
                        fast_cell = _run_distributed_cell(
                            spec, seed, pol, stream_specs, fault_plan,
                            delays, stagger, grid_report, fast=True)
                        _check_fast_cell(fast_cell, cell, spec, seed,
                                         grid_report)
                        cells.append(fast_cell)
    wall_s = time.perf_counter() - start_all

    document = {
        "scenario": "scenario_grid",
        "params": {
            "names": names, "policies": policies, "seeds": seed_list,
            "engines": engine_list, "faults": fault_plan.snapshot(),
            "delays": delays, "stagger": stagger, "scale": scale,
            "fast_path": fast_path,
        },
        "cells": cells,
        "invariants": grid_report.to_json(),
        "summary": {
            "cells": len(cells),
            "checks_run": sum(grid_report.checks.values()),
            # Broken out so its *absence* is visible: without a core
            # engine in --engines (or with only cancellation-prone
            # streams) no differential check runs, and "passed" alone
            # would overstate what was certified.
            "differential_checks": grid_report.checks.get("differential", 0),
            "fast_path_checks": grid_report.checks.get("fast_path", 0),
            "violations": len(grid_report.violations),
            "passed": grid_report.passed,
            "wall_s": round(wall_s, 3),
        },
    }
    if not grid_report.passed:
        first = grid_report.violations[0]
        error = InvariantViolation(
            f"invariant violations in scenario grid "
            f"({len(grid_report.violations)} total); first: "
            f"[{first.invariant}] {first.message}"
        )
        # The per-cell evidence matters most on failure: attach the full
        # document so the CLI can still honour --out before re-raising.
        error.document = document
        raise error
    return document


def _run_core_cell(spec, seed: int, engine: str, stream_specs,
                   grid_report: InvariantReport) -> Dict:
    tree, requests = _replay_requests(spec, seed, stream_specs)
    session = _session(engine, tree, m=spec.m, w=spec.w, u=spec.u)
    watch = CounterWatch(session.controller.counters, report=grid_report)
    start = time.perf_counter()
    outcomes = []
    for request in requests:
        outcomes.append(session.serve(request).outcome)
        watch.observe()
    wall = time.perf_counter() - start
    session.audit(grid_report)
    cell = {
        "scenario": spec.name, "seed": seed, "engine": engine,
        "policy": None, "cost": session.controller.counters.total,
        "wall_ms": round(wall * 1000, 3),
    }
    cell.update(_tally(outcomes))
    return cell


def _run_distributed_cell(spec, seed: int, policy: str, stream_specs,
                          fault_plan, delays: str, stagger: float,
                          grid_report: InvariantReport,
                          fast: bool = False) -> Dict:
    # The fast arm reuses the reference cell's seed on purpose: same
    # seed -> same delay draws -> the equivalence check is exact.
    cell_seed = _cell_seed(spec.name, seed, policy, "distributed")
    tree, requests = _replay_requests(spec, seed, stream_specs)
    plan = None
    if not fault_plan.is_noop:
        # Auto horizon: the submission window plus a flight-time margin,
        # so pauses/storms land while agents are actually mid-climb
        # rather than bunching into the first instants of a long run.
        span = len(requests) * stagger + 4 * spec.n
        plan = dataclasses.replace(
            fault_plan.resolved(span),
            seed=int(fault_plan.seed) ^ cell_seed)
    config = SessionConfig(
        controller=ControllerSpec(
            "distributed", m=spec.m, w=spec.w, u=spec.u,
            options={"fast_path": True} if fast else {}),
        schedule_policy=policy, delay_model=delays, faults=plan,
        seed=cell_seed, max_in_flight=max(len(requests), 1))
    session = ControllerSession(config, tree=tree)
    watch = CounterWatch(session.controller.counters, report=grid_report)
    settled = []

    start = time.perf_counter()
    session.submit_many(requests, stagger=stagger)
    try:
        for record in session.drain():
            settled.append(record)
            watch.observe()
    except ProtocolError:
        # A lost agent surfaces as a liveness violation in the report
        # (the grid keeps running and records the evidence).
        pass
    wall = time.perf_counter() - start
    grid_report.expect(
        len(settled) == len(requests), "liveness",
        f"{spec.name}/{policy}/seed={seed}: "
        f"{len(requests) - len(settled)} requests never resolved",
        scenario=spec.name, policy=policy, seed=seed)
    session.audit(grid_report)
    cell = {
        "scenario": spec.name, "seed": seed, "engine": "distributed",
        "policy": policy, "cost": session.controller.counters.total,
        "simulated_time": round(session.now, 3),
        "wall_ms": round(wall * 1000, 3),
    }
    if fast:
        cell["fast_path"] = True
    injector = getattr(session.controller, "faults", None)
    if injector is not None:
        cell["fault_stats"] = dict(injector.stats)
    cell.update(_tally(r.outcome for r in settled))
    return cell


def _check_fast_cell(fast_cell: Dict, reference: Dict, spec, seed: int,
                     grid_report: InvariantReport) -> None:
    """Trace-identical equivalence: the fast-path FIFO cell must match
    the reference FIFO cell (same stream, same cell seed) on every
    behavioural field — only the wall clock may differ."""
    label = f"{spec.name}/fifo/seed={seed}"
    for field_name in ("granted", "rejected", "cancelled", "pending",
                       "cost", "simulated_time"):
        grid_report.expect(
            fast_cell[field_name] == reference[field_name], "fast_path",
            f"{label}: fast-path {field_name} diverged: "
            f"{fast_cell[field_name]} != {reference[field_name]}",
            scenario=spec.name, policy="fifo", seed=seed)


def _cross_check(cell: Dict, spec, reference: Optional[Dict],
                 cancel_free: bool, fault_plan,
                 grid_report: InvariantReport) -> None:
    """Differential check against the centralized reference.

    Only the guarantees the paper actually makes are asserted: for
    cancellation-free streams (PLAIN/ADD_LEAF only, no event can lose
    its meaning) a pair of runs in which *neither* engine rejected must
    grant the identical count, and any rejecting run must sit inside
    the waste window ``[M - W, M]``.  Fault plans mutate the tree and
    the timing outside the request stream, so the equal-grants check is
    skipped there (the waste window still applies).
    """
    if reference is None or not cancel_free:
        return
    label = f"{spec.name}/{cell['policy']}/seed={cell['seed']}"
    if (cell["rejected"] == 0 and reference["rejected"] == 0
            and fault_plan.is_noop):
        grid_report.expect(
            cell["granted"] == reference["granted"], "differential",
            f"{label}: reject-free distributed run granted "
            f"{cell['granted']}, centralized reference "
            f"{reference['granted']}",
            scenario=spec.name, policy=cell["policy"], seed=cell["seed"])
    elif cell["rejected"] > 0:
        grid_report.expect(
            cell["granted"] >= spec.m - spec.w, "differential",
            f"{label}: rejecting run granted {cell['granted']}, below "
            f"waste window floor {spec.m - spec.w}",
            scenario=spec.name, policy=cell["policy"], seed=cell["seed"])


# ----------------------------------------------------------------------
# kernel — distributed filler lookup, before/after the level index.
# ----------------------------------------------------------------------
#: The kernel bench's arms: the legacy linear board scan, the indexed
#: reference engine, and the fast-path engine on top of the index.
KERNEL_ARMS = (
    ("scan", {"indexed_stores": False}),
    ("indexed", {"indexed_stores": True}),
    ("fast", {"indexed_stores": True, "fast_path": True}),
)


def run_kernel(scenario: str = "deep_burst", seeds: str = "0,1",
               repeats: int = 3, stagger: float = 0.25) -> Dict:
    """The distributed hot path, three ways: scan / indexed / fast.

    Two measurements, both on the named catalogue scenario (deep_burst
    by default — deep paths, so agents climb far and whiteboards near
    the root accumulate parked packages):

    * **end-to-end**: the identical pre-generated stream is pushed
      through ``submit_batch`` three times per seed — the legacy
      linear board scan (``scan``), the kernel's level-windowed lookup
      (``indexed``), and the fast-path engine (``fast``: the
      :class:`~repro.sim.fastsched.FastScheduler` record heap plus the
      flattened hop loop, on top of the index); outcome tallies and
      message counters are asserted identical across all three arms —
      both optimizations are pure constant-factor changes — and the
      wall clocks (min over ``repeats``) are compared.  The fast-path
      acceptance headline is ``fast_speedup_min``: fast vs the indexed
      reference, targeted at >= 3x on deep_burst;
    * **lookup microbench**: a store parked with one package per level
      answers a sweep of window queries through both lookup paths,
      which isolates the per-lookup cost from scheduler overhead.
    """
    spec = get_scenario(scenario)
    seed_list = [int(part) for part in str(seeds).split(",") if part != ""]
    cells: List[Dict] = []
    for seed in seed_list:
        stream_specs = _materialize(spec, seed)
        timings: Dict[str, float] = {}
        checks: Dict[str, object] = {}
        for label, options in KERNEL_ARMS:
            best: Optional[float] = None
            for _ in range(max(repeats, 1)):
                tree, requests = _replay_requests(spec, seed, stream_specs)
                session = _session(
                    "distributed", tree, m=spec.m, w=spec.w, u=spec.u,
                    options=dict(options))
                start = time.perf_counter()
                records = replay_stream(session, requests,
                                        stagger=stagger)
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
                checks[label] = (
                    tuple(sorted(
                        _tally(r.outcome for r in records).items())),
                    session.controller.counters.total)
                session.close()
            timings[label] = best or 0.0
        for label, _options in KERNEL_ARMS[1:]:
            if checks[label] != checks["scan"]:
                raise InvariantViolation(
                    f"{label} arm diverged from the scan at seed={seed}: "
                    f"{checks[label]} != {checks['scan']}")
        tally, messages = checks["fast"]
        cells.append({
            "scenario": spec.name, "seed": seed,
            "scan_ms": round(timings["scan"] * 1000, 3),
            "indexed_ms": round(timings["indexed"] * 1000, 3),
            "fast_ms": round(timings["fast"] * 1000, 3),
            "speedup": round(timings["scan"] / timings["indexed"], 3)
            if timings["indexed"] > 0 else float("inf"),
            "fast_speedup": round(timings["indexed"] / timings["fast"], 3)
            if timings["fast"] > 0 else float("inf"),
            "messages": messages, "tally": dict(tally),
        })

    # Lookup microbench: every level parked, every window queried.
    params = ControllerParams(m=spec.m, w=spec.w, u=spec.u)
    store = NodeStore()
    for level in range(params.max_level + 1):
        controller_kernel.park(
            store, MobilePackage(level=level,
                                 size=params.mobile_size(level)))
    dists = []
    for level in range(params.max_level + 1):
        low = (1 << level) * params.psi
        dists.extend([low // 2 + 1, low + 1, 2 * low])
    rounds = max(50_000 // len(dists), 1)
    lookup = {}
    for label, fn in (("scan", controller_kernel.scan_filler),
                      ("indexed", controller_kernel.peek_filler)):
        start = time.perf_counter()
        for _ in range(rounds):
            for dist in dists:
                fn(store, dist, params)
        lookup[label] = time.perf_counter() - start
    queries = rounds * len(dists)
    for dist in dists:  # the two paths must agree query-for-query
        if (controller_kernel.scan_filler(store, dist, params)
                is not controller_kernel.peek_filler(store, dist, params)):
            raise InvariantViolation(f"lookup paths disagree at dist={dist}")

    return {
        "scenario": "kernel",
        "params": {"scenario": scenario, "seeds": seed_list,
                   "repeats": repeats, "stagger": stagger,
                   "m": spec.m, "w": spec.w, "u": spec.u, "n": spec.n},
        "cells": cells,
        "run_speedup_min": min(c["speedup"] for c in cells),
        "run_speedup_max": max(c["speedup"] for c in cells),
        "fast_speedup_min": min(c["fast_speedup"] for c in cells),
        "fast_speedup_max": max(c["fast_speedup"] for c in cells),
        "lookup": {
            "queries": queries,
            "parked_levels": params.max_level + 1,
            "scan_ms": round(lookup["scan"] * 1000, 3),
            "indexed_ms": round(lookup["indexed"] * 1000, 3),
            "speedup": round(lookup["scan"] / lookup["indexed"], 3)
            if lookup["indexed"] > 0 else float("inf"),
        },
        "equivalent": True,
    }


# ----------------------------------------------------------------------
# profile — where the wall clock goes on the distributed hot path.
# ----------------------------------------------------------------------
#: The profile bench's arms (reference = indexed engine, fast = the
#: fast-path engine); both run the identical stream.
PROFILE_ARMS = {
    "reference": {"indexed_stores": True},
    "fast": {"indexed_stores": True, "fast_path": True},
}

#: Self-time in these is "scheduler machinery" for the profile split:
#: the engines' own modules plus the heapq primitives they lean on.
_SCHEDULER_FILES = ("sim/fastsched.py", "sim/scheduler.py")
_SCHEDULER_BUILTINS = frozenset(["heappush", "heappop"])


def _short_location(filename: str, lineno: int) -> str:
    marker = "repro/"
    index = filename.rfind(marker)
    if index >= 0:
        return f"{filename[index:]}:{lineno}"
    if filename.startswith("~"):
        return "builtin"
    return f"{filename.rsplit('/', 1)[-1]}:{lineno}"


def _is_scheduler_entry(filename: str, func: str) -> bool:
    if any(filename.endswith(part) for part in _SCHEDULER_FILES):
        return True
    return filename.startswith("~") and func in _SCHEDULER_BUILTINS


def run_profile(scenario: str = "deep_burst", seed: int = 0,
                stagger: float = 0.25, top: int = 12,
                arms: str = "reference,fast") -> Dict:
    """cProfile the distributed replay and report the hotspot table.

    Runs the named catalogue scenario once per arm under ``cProfile``
    and reports, per arm, the top-``top`` functions by cumulative and
    by self time plus ``scheduler_self_pct`` — the share of total self
    time spent in scheduler machinery (the scheduler modules and the
    ``heapq`` primitives).  The fast path's acceptance story lives in
    that split: after the engine work the residual ``top_self`` entry
    must be protocol work (the hop/lock handlers), not event dispatch.

    Profiled numbers are for *attribution only* — the tracer inflates
    every call, so wall-clock comparisons belong to ``run_kernel``.
    """
    spec = get_scenario(scenario)
    arm_list = [part.strip() for part in arms.split(",") if part.strip()]
    for arm in arm_list:
        if arm not in PROFILE_ARMS:
            raise ConfigError(
                f"unknown profile arm {arm!r}; known: "
                f"{', '.join(PROFILE_ARMS)}")
    stream_specs = _materialize(spec, seed)
    arm_rows: List[Dict] = []
    for arm in arm_list:
        tree, requests = _replay_requests(spec, seed, stream_specs)
        session = _session("distributed", tree, m=spec.m, w=spec.w,
                           u=spec.u, options=dict(PROFILE_ARMS[arm]))
        profile = cProfile.Profile()
        start = time.perf_counter()
        profile.enable()
        records = replay_stream(session, requests, stagger=stagger)
        profile.disable()
        wall = time.perf_counter() - start
        tally = _tally(r.outcome for r in records)
        messages = session.controller.counters.total
        session.close()

        entries = []
        scheduler_self = 0.0
        total_self = 0.0
        for (filename, lineno, func), (cc, nc, tt, ct, _callers) in (
                pstats.Stats(profile).stats.items()):
            total_self += tt
            if _is_scheduler_entry(filename, func):
                scheduler_self += tt
            entries.append({
                "function": func,
                "location": _short_location(filename, lineno),
                "ncalls": nc,
                "tottime_ms": round(tt * 1000, 3),
                "cumtime_ms": round(ct * 1000, 3),
            })
        by_self = sorted(entries, key=lambda e: e["tottime_ms"],
                         reverse=True)
        by_cumulative = sorted(entries, key=lambda e: e["cumtime_ms"],
                               reverse=True)
        top_self = next(
            (e for e in by_self if e["location"].startswith("repro/")),
            by_self[0] if by_self else None)
        arm_rows.append({
            "arm": arm,
            "wall_ms": round(wall * 1000, 3),
            "messages": messages,
            "tally": tally,
            "scheduler_self_pct": round(
                scheduler_self / total_self * 100, 2) if total_self else 0.0,
            "top_self": top_self,
            "self_hotspots": by_self[:max(top, 1)],
            "hotspots": by_cumulative[:max(top, 1)],
        })
    return {
        "scenario": "profile",
        "params": {"scenario": scenario, "seed": seed, "stagger": stagger,
                   "top": top, "arms": arm_list,
                   "m": spec.m, "w": spec.w, "u": spec.u, "n": spec.n},
        "arms": arm_rows,
    }


# ----------------------------------------------------------------------
# memory — Claim 4.8 node-state audit (the bench_e08 sweep).
# ----------------------------------------------------------------------
def _encoded_bits(board, log_n: float, log_u: float) -> float:
    """Bits to encode one whiteboard per the Claim 4.8 representation:
    per-level package counts, one merged static-pool integer, and one
    O(log N) record per queued agent (plus the two boolean flags)."""
    bits = 2.0  # lock flag + reject flag
    levels = {package.level for package in board.store.mobile}
    bits += len(levels) * log_u          # count per occupied level
    if board.store.static_permits:
        bits += 3 * log_n                # one O(log M) = O(log^3 N) integer
    bits += len(board.queue) * log_n     # queued agent records
    return bits


def _audit_boards(controller, audit: MemoryAudit,
                  log_n: float, log_u: float) -> None:
    for node, board in controller.boards.items():
        if node.alive:
            audit.record(node.node_id, node.child_degree,
                         _encoded_bits(board, log_n, log_u))


def run_memory(sizes: Optional[List[int]] = None, stagger: float = 0.25,
               fast_path: bool = False) -> Dict:
    """Per-node memory vs the Claim 4.8 bound, audited at peak load.

    Each size runs a concurrent distributed storm (``2n`` mixed-churn
    requests staggered ``stagger`` apart) and audits every live node's
    encoded whiteboard state — per-level package counts, the merged
    static pool, the agent queue — against
    ``deg(v) log N + log^3 N + log^2 U`` bits, once mid-flight (peak
    queueing) and once at quiescence.  The run **raises** if any node
    exceeds the bound or if the worst ratio grows with ``n`` (the bound
    would then be mis-stated); the JSON document records the per-size
    evidence.  ``fast_path`` runs the same audit over the fast-path
    engine — node state is engine-independent, so the ratios must tell
    the same story there.
    """
    sizes = sizes or [100, 400, 1600]
    rows = []
    for n in sizes:
        tree = build_random_tree(n, seed=n)
        u = 4 * n
        session = _session("distributed", tree, m=6 * n, w=n, u=u,
                           options={"fast_path": fast_path})
        audit = MemoryAudit()
        log_n, log_u = math.log2(2 * n), math.log2(u)
        rng = random.Random(n + 3)
        picker = NodePicker(tree)
        requests = [random_request(tree, rng, picker=picker)
                    for _ in range(2 * n)]
        picker.detach()
        start = time.perf_counter()
        session.submit_many(requests, stagger=stagger)
        # Audit mid-flight (peak queueing) and again at quiescence.
        session.scheduler.run(until=len(requests) * stagger / 2)
        _audit_boards(session.controller, audit, log_n, log_u)
        settled = list(session.drain())
        _audit_boards(session.controller, audit, log_n, log_u)
        wall = time.perf_counter() - start
        if len(settled) != len(requests):
            raise InvariantViolation(
                f"memory bench at n={n}: "
                f"{len(requests) - len(settled)} requests never resolved")
        worst = audit.worst_ratio(log_n, log_u)
        row = {
            "n": n, "u": u, "m": 6 * n, "w": n,
            "requests": len(requests),
            "samples": len(audit.samples),
            "worst_ratio": round(worst, 4),
            "within_bound": worst <= 1.0,
            "wall_ms": round(wall * 1000, 3),
        }
        row.update(_tally(r.outcome for r in settled))
        rows.append(row)
        session.close()
    ratios = [row["worst_ratio"] for row in rows]
    growth_ok = ratios[-1] <= 2.0 * max(ratios[0], 1e-6)
    document = {
        "scenario": "memory",
        "params": {"sizes": sizes, "stagger": stagger,
                   "fast_path": fast_path},
        "rows": rows,
        "worst_ratio": max(ratios),
        "within_bound": all(row["within_bound"] for row in rows),
        "ratio_growth_ok": growth_ok,
    }
    if not document["within_bound"] or not growth_ok:
        error = InvariantViolation(
            "Claim 4.8 memory audit failed: "
            + ("node state exceeded the bound"
               if not document["within_bound"]
               else "worst ratio grows with n"))
        error.document = document
        raise error
    return document


# ----------------------------------------------------------------------
# session — the session layer's own overhead, measured honestly.
# ----------------------------------------------------------------------
#: Flavours whose handle_batch consumes its input lazily (required by
#: the bench's TreeMirror replay; see run_session_overhead).
SESSION_BENCH_FLAVORS = ("centralized", "iterated", "adaptive",
                         "terminating", "trivial")


def run_session_overhead(n: int = 600, steps: int = 2000,
                         batch_size: int = 64, topology: str = "random",
                         mix: str = "default", seed: int = 0,
                         repeats: int = 3,
                         flavor: str = "iterated") -> Dict:
    """Session layer vs direct protocol calls on the batch workload.

    One request stream is recorded once (tree-independent specs), then
    replayed through two *paired* comparisons on identically-built twin
    trees:

    * **batch** — ``handle_batch`` (direct ``make_controller`` product)
      vs ``ControllerSession.serve_stream``, chunk by chunk;
    * **seq** — ``handle`` vs ``ControllerSession.serve``, block by
      block.

    The pairing is chunk-interleaved with alternating order (direct
    first on even chunks, session first on odd ones), so slow clock
    drift (CPU frequency, noisy CI neighbours) and warm-cache ordering
    bias hit both arms of a pair equally.  Both engines of a pair
    advance over the same stream in lockstep and must produce identical
    outcome sequences and move counters (asserted).  Because the
    replays are deterministic, chunk ``i`` does identical work in every
    repeat; each arm's wall clock is therefore the **sum of per-chunk
    minima** over ``repeats`` (the lower-envelope estimate, which
    converges far faster than min-of-totals under bursty noise).  The
    headline is ``overhead_batch_pct`` — the amortized session tax on
    the batched path, targeted at <= 5%.
    """
    if flavor not in SESSION_BENCH_FLAVORS:
        # The replay resolves each recorded spec lazily against a twin
        # tree, which needs a handle_batch that consumes its input
        # incrementally; the distributed engine and the wrappers
        # materialize batches up front, so specs that target mid-chunk
        # creations cannot resolve there.
        raise ConfigError(
            f"the session bench replays lazily and supports only the "
            f"synchronous flavours ({', '.join(SESSION_BENCH_FLAVORS)}); "
            f"got {flavor!r}")
    mix_map = _MIXES[mix]()
    u, m, w = 4 * n, 4 * n, max(n // 4, 1)

    # Record the stream once, sequentially, against a scratch engine.
    scratch = _build(topology, n, seed, True)
    recorder = _session(flavor, scratch, m=m, w=w, u=u)
    rng = random.Random(seed)
    picker = NodePicker(scratch)
    specs = []
    for _ in range(steps):
        request = random_request(scratch, rng, mix=mix_map, picker=picker)
        specs.append(request_spec(request))
        recorder.serve(request)
    picker.detach()

    def paired_replay(batched: bool):
        """One repeat: direct vs session over the same stream, timed
        chunk-against-chunk in alternating order.  Returns per-chunk
        time lists and the per-arm evidence (statuses + counters) for
        the equivalence assert."""
        tree_d = _build(topology, n, seed, True)
        tree_s = _build(topology, n, seed, True)
        mirror_d = TreeMirror(tree_d)
        mirror_s = TreeMirror(tree_s)
        controller = make_controller(flavor, tree_d, m=m, w=w, u=u)
        session = _session(flavor, tree_s, m=m, w=w, u=u)
        statuses_d: List[str] = []
        statuses_s: List[str] = []
        chunk_times_d: List[float] = []
        chunk_times_s: List[float] = []

        def run_direct(chunk) -> float:
            t0 = time.perf_counter()
            if batched:
                outcomes = controller.handle_batch(mirror_d.requests(chunk))
            else:
                outcomes = [controller.handle(mirror_d.request(spec))
                            for spec in chunk]
            elapsed = time.perf_counter() - t0
            statuses_d.extend(o.status.value for o in outcomes)
            return elapsed

        def run_session(chunk) -> float:
            t0 = time.perf_counter()
            if batched:
                records = session.serve_stream(mirror_s.requests(chunk))
            else:
                records = [session.serve(mirror_s.request(spec))
                           for spec in chunk]
            elapsed = time.perf_counter() - t0
            # Status read through the record's raw outcome — the same
            # enum access the direct arm pays, so the diff isolates
            # the session layer itself.
            statuses_s.extend(r.outcome.status.value for r in records)
            return elapsed

        for index, base in enumerate(range(0, len(specs), batch_size)):
            chunk = specs[base:base + batch_size]
            if index % 2 == 0:
                chunk_times_d.append(run_direct(chunk))
                chunk_times_s.append(run_session(chunk))
            else:
                chunk_times_s.append(run_session(chunk))
                chunk_times_d.append(run_direct(chunk))
        mirror_d.detach()
        mirror_s.detach()
        return (chunk_times_d, chunk_times_s,
                (statuses_d, tuple(sorted(
                    controller.counters.snapshot().items()))),
                (statuses_s, tuple(sorted(
                    session.controller.counters.snapshot().items()))))

    arm_chunks: Dict[str, List[float]] = {}
    evidence: Dict[str, object] = {}
    gc_was_enabled = gc.isenabled()
    try:
        gc.disable()
        for _ in range(max(repeats, 1)):
            for batched in (True, False):
                gc.collect()
                times_d, times_s, proof_d, proof_s = paired_replay(batched)
                kind = "batch" if batched else "seq"
                for label, times in ((f"direct_{kind}", times_d),
                                     (f"session_{kind}", times_s)):
                    if label in arm_chunks:
                        arm_chunks[label] = [
                            min(old, new) for old, new in
                            zip(arm_chunks[label], times)]
                    else:
                        arm_chunks[label] = times
                evidence[f"direct_{kind}"] = proof_d
                evidence[f"session_{kind}"] = proof_s
    finally:
        if gc_was_enabled:
            gc.enable()
    timings = {label: sum(times) for label, times in arm_chunks.items()}
    baseline = evidence["direct_batch"]
    for label in ("session_batch", "direct_seq", "session_seq"):
        if evidence[label] != baseline:
            raise InvariantViolation(
                f"arm {label} diverged from direct_batch "
                "(outcomes or counters differ)")

    def overhead(direct: float, session: float) -> float:
        return round((session - direct) / direct * 100, 2) if direct else 0.0

    overhead_batch = overhead(timings["direct_batch"],
                              timings["session_batch"])
    tally = _tally_statuses(baseline[0])
    return {
        "scenario": "session",
        "params": {"n": n, "steps": steps, "batch_size": batch_size,
                   "topology": topology, "mix": mix, "seed": seed,
                   "repeats": repeats, "flavor": flavor,
                   "m": m, "w": w, "u": u},
        "direct_batch_ms": round(timings["direct_batch"] * 1000, 3),
        "session_batch_ms": round(timings["session_batch"] * 1000, 3),
        "direct_seq_ms": round(timings["direct_seq"] * 1000, 3),
        "session_seq_ms": round(timings["session_seq"] * 1000, 3),
        "overhead_batch_pct": overhead_batch,
        "overhead_seq_pct": overhead(timings["direct_seq"],
                                     timings["session_seq"]),
        "target_pct": 5.0,
        "within_target": overhead_batch <= 5.0,
        "equivalent": True,
        **tally,
    }


def _tally_statuses(statuses: List[str]) -> Dict[str, int]:
    tally = {"granted": 0, "rejected": 0, "cancelled": 0, "pending": 0}
    for status in statuses:
        tally[status] += 1
    return tally


# ----------------------------------------------------------------------
# apps — the Section 5 application layer, measured honestly.
# ----------------------------------------------------------------------
#: The churn mix the estimator benches have always used (bench_e05..e07):
#: topological requests only, additions slightly outweighing removals.
APP_BENCH_MIX = {
    RequestKind.ADD_LEAF: 0.35,
    RequestKind.ADD_INTERNAL: 0.15,
    RequestKind.REMOVE_LEAF: 0.30,
    RequestKind.REMOVE_INTERNAL: 0.20,
}

def _app_spec_for(name: str, **knobs: Any):
    from repro.service import AppSpec
    params: Dict[str, Any] = {}
    if name == "size_estimation" or name == "subtree_estimator":
        params["beta"] = 2.0
    if name == "majority_commit":
        params["total"] = 1 << 20  # the universe bound never binds here
    return AppSpec(name, params=params, **knobs)


def _app_state(name: str, app: Any, tree) -> Any:
    """The app-level state the old/new equivalence compares: estimates,
    ids, mu pointers — whatever the app's theorem is about."""
    if name == "size_estimation":
        return ("estimate", app.estimate, app.iterations_run)
    if name == "name_assignment":
        return ("ids", tuple(sorted(app.ids[node]
                                    for node in tree.nodes())))
    if name == "subtree_estimator":
        probe = app.estimate_of if hasattr(app, "estimate_of") else app.estimate
        return ("sw", tuple(sorted(probe(node) for node in tree.nodes())))
    if name == "heavy_child":
        return ("mu", tuple(sorted(
            (k.node_id, v.node_id) for k, v in app._mu.items())))
    return ()


def _drive_app_overhead(name: str, n: int, steps: int, batch_size: int,
                        seed: int, repeats: int) -> Dict:
    """Per-request ``serve`` vs chunked ``serve_stream`` on identical
    churn, chunk-paired.

    The stream is recorded once (tree-independent specs) against a
    scratch run of the app, then replayed through two twin trees —
    the per-request path and the chunked streaming path — chunk
    against chunk in alternating order, exactly the
    ``run_session_overhead`` pairing discipline (per-chunk minima over
    ``repeats``).  Outcome sequences and the app-level state
    (estimates / ids / mu pointers) must match; the headline is the
    amortized per-request tax the streaming path removes.
    """
    from repro.apps import make_app

    # Record the stream once against a scratch run of the app itself.
    scratch = build_random_tree(n, seed=seed)
    recorder = make_app(_app_spec_for(name), tree=scratch)
    rng = random.Random(seed + 1)
    picker = NodePicker(scratch)
    specs = []
    for _ in range(steps):
        request = random_request(scratch, rng, mix=APP_BENCH_MIX,
                                 picker=picker)
        specs.append(request_spec(request))
        recorder.serve(request)
    picker.detach()
    recorder.close()

    def paired_replay():
        """Two arms on twin trees, timed chunk-against-chunk in
        alternating order: the app's per-request ``serve`` (baseline)
        and the app's chunked ``serve_stream`` (the <= 5% target arm,
        mirroring the session bench's batched comparison)."""
        trees = [build_random_tree(n, seed=seed) for _ in range(2)]
        mirrors = [TreeMirror(tree) for tree in trees]
        app_seq = make_app(_app_spec_for(name), tree=trees[0])
        app_batch = make_app(_app_spec_for(name), tree=trees[1])
        statuses: Dict[str, List[str]] = {"seq": [], "batch": []}
        chunk_times: Dict[str, List[float]] = {"seq": [], "batch": []}

        def run_seq(chunk) -> float:
            mirror = mirrors[0]
            t0 = time.perf_counter()
            records = [app_seq.serve(mirror.request(spec))
                       for spec in chunk]
            elapsed = time.perf_counter() - t0
            statuses["seq"].extend(
                r.outcome.status.value for r in records)
            return elapsed

        def run_batch(chunk) -> float:
            mirror = mirrors[1]
            t0 = time.perf_counter()
            records = app_batch.serve_stream(mirror.requests(chunk))
            elapsed = time.perf_counter() - t0
            statuses["batch"].extend(
                r.outcome.status.value for r in records)
            return elapsed

        arms = (("seq", run_seq), ("batch", run_batch))
        for index, base in enumerate(range(0, len(specs), batch_size)):
            chunk = specs[base:base + batch_size]
            for offset in range(2):  # alternate the arm order per chunk
                label, runner = arms[(index + offset) % 2]
                chunk_times[label].append(runner(chunk))
        for mirror in mirrors:
            mirror.detach()
        for app in (app_seq, app_batch):
            report = app.audit()
            if not report.passed:
                raise InvariantViolation(
                    f"app {name}: invariant audit failed in overhead "
                    f"bench: {report.violations[0].message}")
        evidence = {
            "seq": (statuses["seq"], _app_state(name, app_seq, trees[0])),
            "batch": (statuses["batch"],
                      _app_state(name, app_batch, trees[1])),
        }
        app_seq.close()
        app_batch.close()
        return chunk_times, evidence

    best: Dict[str, List[float]] = {}
    evidence: Dict[str, object] = {}
    gc_was_enabled = gc.isenabled()
    try:
        gc.disable()
        for _ in range(max(repeats, 1)):
            gc.collect()
            chunk_times, evidence = paired_replay()
            for label, times in chunk_times.items():
                best[label] = ([min(a, b) for a, b in
                                zip(best[label], times)]
                               if label in best else times)
    finally:
        if gc_was_enabled:
            gc.enable()
    if evidence["batch"] != evidence["seq"]:
        raise InvariantViolation(
            f"app {name}: batch path diverged from seq "
            "(outcomes or app state differ)")
    timings = {label: sum(times) for label, times in best.items()}
    baseline = timings["seq"]
    overhead_batch = (round((timings["batch"] - baseline) / baseline
                            * 100, 2) if baseline else 0.0)

    return {
        "app": name,
        "app_seq_ms": round(timings["seq"] * 1000, 3),
        "app_batch_ms": round(timings["batch"] * 1000, 3),
        "overhead_batch_pct": overhead_batch,
        "equivalent": True,
        **_tally_statuses(list(evidence["seq"][0])),
    }



def _drive_app_complexity(name: str, sizes: List[int],
                          steps_per_node: int, seed: int) -> Dict:
    """Messages-per-change sweep for one app on the new path: the
    bench_e05/e06/e07 measurement, CLI-shaped.  Reports the amortized
    cost per topological change, the ``12 log^2 n`` envelope ratio, a
    log-log slope of total messages against n (near 1 = near-linear
    totals = polylog amortized), and the app's guarantee statistic."""
    import math as _math

    from repro.apps import make_app

    rows = []
    totals = []
    for n in sizes:
        tree = build_random_tree(n, seed=seed + n)
        app = make_app(_app_spec_for(name), tree=tree)
        rng = random.Random(seed + n + 1)
        picker = NodePicker(tree)
        worst: float = 0.0
        for _ in range(steps_per_node * n):
            request = random_request(tree, rng, mix=APP_BENCH_MIX,
                                     picker=picker)
            app.serve(request)
        picker.detach()
        report = app.audit()
        if not report.passed:
            raise InvariantViolation(
                f"app {name}: invariant audit failed at n={n}: "
                f"{report.violations[0].message}")
        if name == "subtree_estimator":
            # The Lemma 5.3 guarantee is about super-weights, not the
            # root size estimate: worst over-approximation over nodes
            # (estimates never undercount — every addition below v
            # shipped its permit through v first).
            worst = max(app.estimate_of(node) / app.true_super_weight(node)
                        for node in tree.nodes())
        elif name in ("size_estimation", "majority_commit",
                      "ancestry_labels", "routing_labels"):
            worst = app.check_approximation()
        elif name == "name_assignment":
            app.check_invariants()
            worst = max(app.ids[v] for v in tree.nodes()) / tree.size
        elif name == "heavy_child":
            worst = app.max_light_depth()
        messages = app.counters.total
        changes = max(tree.topology_changes, 1)
        per_change = messages / changes
        envelope = 12 * _math.log2(max(tree.size, 4)) ** 2
        row = {
            "n": n, "final_n": tree.size, "changes": changes,
            "iterations": app.iterations_run,
            "messages": messages,
            "per_change": round(per_change, 2),
            "envelope_12log2": round(envelope, 2),
            "within_envelope": per_change <= envelope,
            "guarantee_stat": round(float(worst), 3),
        }
        if hasattr(app, "label_counters"):
            row["label_messages"] = app.label_counters.total
            row["label_per_change"] = round(
                app.label_counters.total / changes, 2)
        rows.append(row)
        totals.append(messages)
        app.close()
    return {
        "app": name,
        "rows": rows,
        # Total messages ~ n polylog(n): the log-log slope against n
        # stays near 1 when the amortized cost is polylog.  (None when
        # the sweep has a single size — a fit needs two points.)
        "log_log_slope": round(log_log_slope(sizes, totals), 4)
        if len(sizes) >= 2 else None,
        "polylog_envelope_held": all(r["within_envelope"] for r in rows),
    }


def _drive_app_grid_cell(name: str, policy: str, faults: Optional[str],
                         n: int, steps: int, seed: int,
                         grid_report: InvariantReport) -> Dict:
    """One event-driven cell: the app on the distributed engine under a
    schedule policy (and optionally a fault plan), invariant-audited."""
    from repro.apps import make_app
    from repro.service import IterationRecord

    cell_seed = _cell_seed("apps", name, policy, faults or "none", seed)
    tree = build_random_tree(n, seed=seed)
    spec = _app_spec_for(name, flavor="distributed",
                         schedule_policy=policy, faults=faults,
                         seed=cell_seed, max_in_flight=1 << 20)
    app = make_app(spec, tree=tree)
    # Pre-generated against the initial topology (catalogue style):
    # targets may vanish mid-run and resolve CANCELLED, which is the
    # Section 4.2 semantics, not an error.
    rng = random.Random(cell_seed)
    requests = [random_request(tree, rng, mix=APP_BENCH_MIX)
                for _ in range(steps)]
    start = time.perf_counter()
    app.submit_many(requests)
    stream = app.settle_all()
    wall = time.perf_counter() - start
    boundaries = sum(1 for r in stream if isinstance(r, IterationRecord))
    app.audit(grid_report)
    if name == "name_assignment":
        app.check_invariants()
    cell = {
        "app": name, "policy": policy, "faults": faults or "none",
        "iterations": app.iterations_run, "boundaries": boundaries,
        "engine_messages": app.engine_counters.total,
        "wall_ms": round(wall * 1000, 3),
    }
    cell.update(app.tally())
    if faults:
        # The whole-run view: banked per-iteration injector tallies
        # plus the live one (each rollover wires a fresh injector).
        cell["fault_stats"] = app.fault_stats
    app.close()
    return cell


def run_apps(apps: str = "all", sizes: Optional[List[int]] = None,
             steps_per_node: int = 3, overhead_n: int = 200,
             overhead_steps: int = 600, batch_size: int = 64,
             repeats: int = 3, seed: int = 0,
             policies: str = "fifo,random,adversary",
             faults: str = "stall=0.05",
             grid_n: int = 40, grid_steps: int = 120) -> Dict:
    """The application-layer bench: overhead + complexity + grid.

    Three sections, one JSON document (``BENCH_apps.json``):

    * **overhead** — the app's chunked ``serve_stream`` path vs its
      per-request ``serve`` path on identical churn (chunk-paired,
      per-chunk minima, equivalence-asserted); target <= 5% amortized
      across the apps;
    * **complexity** — the bench_e05/e06/e07 sweeps on the new path:
      messages per topological change against the ``12 log^2 n``
      polylog envelope, plus log-log fits of the totals
      (:mod:`repro.metrics.fitting`);
    * **grid** — every app event-driven on the distributed engine,
      per schedule policy, without and with a fault plan, audited by
      :func:`repro.metrics.invariants.audit_app`; the run **raises**
      on any violation.
    """
    from repro.service import APP_NAMES, resolve_app

    if apps == "all":
        names = list(APP_NAMES)
    else:
        # resolve_app applies the same spelling normalization every
        # other entry point accepts (hyphens, whitespace) and raises
        # ConfigError — a ValueError — naming the registry.
        names = [resolve_app(part)
                 for part in apps.split(",") if part.strip()]
    sizes = sizes or [100, 200, 400]
    policy_list = [p.strip() for p in policies.split(",") if p.strip()]
    for policy in policy_list:
        if policy not in SCHEDULE_POLICIES:
            raise ConfigError(
                f"unknown policy {policy!r}; known: "
                f"{', '.join(SCHEDULE_POLICIES)}")

    overhead_rows = [
        _drive_app_overhead(name, overhead_n, overhead_steps, batch_size,
                            seed, repeats)
        for name in names]
    seq_total = sum(r["app_seq_ms"] for r in overhead_rows)
    batch_total = sum(r["app_batch_ms"] for r in overhead_rows)
    amortized = (round((batch_total - seq_total) / seq_total * 100, 2)
                 if seq_total else 0.0)

    complexity = [_drive_app_complexity(name, sizes, steps_per_node, seed)
                  for name in names]

    grid_report = InvariantReport()
    cells = []
    for name in names:
        for policy in policy_list:
            for plan in (None, faults):
                cells.append(_drive_app_grid_cell(
                    name, policy, plan, grid_n, grid_steps, seed,
                    grid_report))

    document = {
        "scenario": "apps",
        "params": {
            "apps": names, "sizes": sizes,
            "steps_per_node": steps_per_node,
            "overhead_n": overhead_n, "overhead_steps": overhead_steps,
            "batch_size": batch_size, "repeats": repeats, "seed": seed,
            "policies": policy_list, "faults": faults,
            "grid_n": grid_n, "grid_steps": grid_steps,
        },
        "overhead": {
            "rows": overhead_rows,
            "amortized_pct": amortized,
            "target_pct": 5.0,
            "within_target": amortized <= 5.0,
        },
        "complexity": complexity,
        "grid": {
            "cells": cells,
            "invariants": grid_report.to_json(),
            "checks_run": sum(grid_report.checks.values()),
            "violations": len(grid_report.violations),
            "passed": grid_report.passed,
        },
    }
    if not grid_report.passed:
        first = grid_report.violations[0]
        error = InvariantViolation(
            f"invariant violations in the apps grid "
            f"({len(grid_report.violations)} total); first: "
            f"[{first.invariant}] {first.message}")
        error.document = document
        raise error
    return document


# ----------------------------------------------------------------------
# gateway — concurrent ingestion under churn (throughput + latency).
# ----------------------------------------------------------------------
def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def run_gateway(scenario: str = "mixed_flood", seeds: str = "0,1,2",
                clients: int = 4, wave: int = 10,
                batch_size: int = 8, queue_capacity: int = 256,
                policy: str = "fifo", delays: str = "burst",
                faults: str = "stall=0.15,storms=3,storm_size=6",
                breaker_latency: float = 300.0,
                breaker_failures: int = 2, breaker_cooldown: int = 2,
                breaker_probes: int = 1,
                scale: float = 0.5, stagger: float = 0.25) -> Dict:
    """Sustained ingestion through the gateway under a churn storm.

    Per seed: the catalogue scenario's pre-generated stream is split
    round-robin across ``clients`` real threads, each submitting
    chunked waves through a worker-pumped :class:`repro.gateway.
    Gateway` over the event-driven engine with bursty delays, stall
    faults, and churn storms — the fault regime the circuit breaker
    exists for.  Clients retry shed requests (which is what supplies
    HALF_OPEN with probes), so the breaker's full trip/recover cycle
    runs under measurement.

    Reported per cell: sustained engine throughput (settled requests
    per wall second), wall-clock p50/p99 settlement latency in
    milliseconds, simulated-clock p50/p99, the full
    :class:`~repro.gateway.GatewayStats` snapshot (trips, recoveries,
    sheds, probes), and the injector's fault tallies.  The grid then
    *asserts*: every cell's full-stack audit is clean (gateway
    conservation -> session envelopes -> controller invariants), no
    ticket was dropped or double-settled, and the breaker both tripped
    and recovered at least once across the grid — a bench run that
    never exercised the breaker is a configuration bug, not a result.
    Violations raise ``InvariantViolation`` with the JSON document
    attached (the bench CLI prints it before failing).
    """
    spec = get_scenario(scenario)
    if scale != 1.0:
        spec = spec.scaled(scale)
    seed_list = [int(part) for part in str(seeds).split(",") if part != ""]
    fault_plan = parse_fault_spec(faults)
    gateway_config = GatewayConfig(
        queue_capacity=queue_capacity, batch_size=batch_size,
        breaker_latency=breaker_latency,
        breaker_failures=breaker_failures,
        breaker_cooldown=breaker_cooldown,
        breaker_probes=breaker_probes)
    grid_report = InvariantReport()
    cells: List[Dict] = []
    total_trips = total_recoveries = 0

    for seed in seed_list:
        cell_seed = _cell_seed("gateway", spec.name, policy, seed)
        stream_specs = _materialize(spec, seed)
        tree, requests = _replay_requests(spec, seed, stream_specs)
        span = len(requests) * stagger + 4 * spec.n
        plan = dataclasses.replace(
            fault_plan.resolved(span),
            seed=int(fault_plan.seed) ^ cell_seed)
        config = SessionConfig(
            controller=ControllerSpec("distributed", m=spec.m, w=spec.w,
                                      u=spec.u),
            schedule_policy=policy, delay_model=delays, faults=plan,
            seed=cell_seed, max_in_flight=1 << 20)
        session = ControllerSession(config, tree=tree)
        gateway = Gateway(session, gateway_config)
        label = f"{spec.name}/{policy}/seed={seed}"
        settled_verdicts: List[str] = []
        client_errors: List[BaseException] = []

        def serve_slice(idx: int, gateway: Gateway = gateway,
                        requests: List[Request] = requests,
                        sink: List[str] = settled_verdicts,
                        errors: List[BaseException] = client_errors
                        ) -> None:
            try:
                mine = requests[idx::clients]
                for start in range(0, len(mine), wave):
                    chunk = mine[start:start + wave]
                    for _ in range(1000):  # shed-retry loop
                        tickets = [gateway.submit(r, client=f"c{idx}")
                                   for r in chunk]
                        for ticket in tickets:
                            ticket.result(timeout=120)
                        sink.extend(t.verdict.value for t in tickets
                                    if t.verdict.value != "shed")
                        chunk = [t.request for t in tickets
                                 if t.verdict.value == "shed"]
                        if not chunk:
                            break
                        time.sleep(0.0005)
            except BaseException as error:
                errors.append(error)

        gateway.start()
        threads = [threading.Thread(target=serve_slice, args=(idx,))
                   for idx in range(clients)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        drained = gateway.join(timeout=300)
        wall = time.perf_counter() - start
        gateway.stop()

        grid_report.expect(
            not client_errors and drained
            and not any(t.is_alive() for t in threads),
            "liveness",
            f"{label}: clients hung or errored: {client_errors[:2]}",
            scenario=spec.name, seed=seed)
        stats = gateway.stats
        grid_report.expect(
            len(settled_verdicts) == len(requests), "liveness",
            f"{label}: {len(requests) - len(settled_verdicts)} requests "
            "never reached a non-shed settlement",
            scenario=spec.name, seed=seed)
        audit_gateway(gateway, grid_report)
        total_trips += stats.breaker_trips
        total_recoveries += stats.breaker_recoveries
        lat_ms = [value * 1000.0 for value in gateway.latencies_wall]
        cells.append({
            "scenario": spec.name, "seed": seed, "policy": policy,
            "requests": len(requests), "clients": clients,
            "wall_s": round(wall, 4),
            "req_per_s": round(stats.settled / wall, 1) if wall else 0.0,
            "latency_wall_ms": {
                "p50": round(_percentile(lat_ms, 0.50), 3),
                "p99": round(_percentile(lat_ms, 0.99), 3),
            },
            "latency_sim": {
                "p50": round(_percentile(gateway.latencies_session,
                                         0.50), 3),
                "p99": round(_percentile(gateway.latencies_session,
                                         0.99), 3),
            },
            "stats": stats.snapshot(),
            "fault_stats": dict(getattr(session.controller, "faults").stats
                                if getattr(session.controller, "faults",
                                           None) is not None else {}),
            "simulated_time": round(session.now, 3),
        })
        session.close()

    grid_report.expect(
        total_trips >= 1 and total_recoveries >= 1, "breaker",
        f"the grid never exercised the breaker (trips={total_trips}, "
        f"recoveries={total_recoveries}); tighten breaker_latency or "
        "the fault plan",
        trips=total_trips, recoveries=total_recoveries)

    document = {
        "scenario": "gateway",
        "workload": spec.params_json(),
        "gateway_config": gateway_config.snapshot(),
        "faults": fault_plan.snapshot(),
        "cells": cells,
        "throughput": {
            "sustained_req_per_s": round(
                sum(c["req_per_s"] for c in cells) / max(len(cells), 1),
                1),
            "breaker_trips": total_trips,
            "breaker_recoveries": total_recoveries,
        },
        "invariants": grid_report.to_json(),
        "checks_run": sum(grid_report.checks.values()),
        "violations": len(grid_report.violations),
        "passed": grid_report.passed,
    }
    if not grid_report.passed:
        first = grid_report.violations[0]
        error = InvariantViolation(
            f"invariant violations in the gateway grid "
            f"({len(grid_report.violations)} total); first: "
            f"[{first.invariant}] {first.message}")
        error.document = document
        raise error
    return document


# ----------------------------------------------------------------------
# fleet — the sharded controller fleet (scale-out acceptance bench).
# ----------------------------------------------------------------------
def _drive_fleet_cell(shard_count: int, steps: int, clients: int,
                      seed: int, grid_report: "InvariantReport") -> Dict:
    """One scaling cell: mixed default-mix churn over ``shard_count``
    shards, ``clients`` sticky origins, budget sized to grant the whole
    stream (throughput is measured, not exhaustion).

    Throughput is *simulated*: each shard's busy time is its message
    moves plus one tick of per-request engine overhead (1 tick = 1 us);
    shards run in parallel, so the fleet's makespan is the busiest
    shard's total and sustained req/s = steps / makespan.  That makes
    the scaling number a property of the workload and the router —
    independent of host load — while wall clock is reported alongside.
    """
    from repro.fleet import FleetConfig, FleetRouter

    label = f"shards={shard_count}"
    config = FleetConfig.of(
        shards=shard_count, m_total=2 * steps + shard_count,
        w_total=2 * shard_count, u=4 * steps,
        seed=_cell_seed("fleet", shard_count, seed))
    fleet = FleetRouter(config)
    rng = random.Random(seed)
    mix = default_mix()
    pickers = [NodePicker(shard.tree) for shard in fleet.shards]
    start = time.perf_counter()
    for _ in range(steps):
        client = f"client-{rng.randrange(clients)}"
        index = fleet.place(client)
        request = random_request(fleet.shards[index].tree, rng, mix=mix,
                                 picker=pickers[index])
        fleet.serve(request, origin=client)
    wall = time.perf_counter() - start
    for picker in pickers:
        picker.detach()

    busy = [shard.served + shard.counters.total for shard in fleet.shards]
    makespan = max(busy)
    report = fleet.audit()
    grid_report.expect(report.passed, "fleet_audit",
                       f"{label}: {report.violations[:2]}",
                       shards=shard_count)
    tally = fleet.tally()
    grid_report.expect(tally.get("rejected", 0) == 0, "budget_sizing",
                       f"{label}: scaling cell hit the reject wave "
                       "(budget under-sized; timings would mix regimes)",
                       shards=shard_count)
    cell = {
        "shards": shard_count, "steps": steps, "clients": clients,
        "busy_ticks": busy, "makespan_ticks": makespan,
        "total_ticks": sum(busy),
        "sustained_req_per_s": round(steps * 1e6 / makespan, 1),
        "wall_s": round(wall, 4),
        "tally": tally,
        "transfers": len(fleet.ledger),
        "granted_total": fleet.granted_total,
        "audit_passed": report.passed,
    }
    fleet.close()
    return cell


def run_fleet(shards: str = "1,2,4,8", steps: int = 2000,
              clients: int = 256, seed: int = 7,
              scale: float = 0.25) -> Dict:
    """The fleet acceptance bench (``BENCH_fleet.json``).

    Three sections, every one invariant-audited:

    * **scaling** — mixed default-mix churn at each shard count;
      simulated sustained req/s (see :func:`_drive_fleet_cell`),
      speedup vs the 1-shard cell, and scaling efficiency
      (speedup / shards).  Asserts >= 3x sustained req/s at 4 shards.
    * **equivalence** — the 1-shard fleet replays the mixed_flood
      catalogue stream against a plain terminating
      :class:`~repro.service.session.ControllerSession` twin:
      tallies, move counters, and the verdict sequence must be
      bit-for-bit identical.
    * **stress** — skewed-weight fleets driven through exhaustion:
      must produce >= 1 cross-shard ``BudgetTransfer`` (including a
      live-session ``reclaim``), end in a global reject wave with
      fleet-level waste zero (granted == m_total before any client
      reject), and audit clean.

    Violations raise ``InvariantViolation`` with the JSON document
    attached (the bench CLI prints it before failing).
    """
    from repro.fleet import FleetConfig, FleetRouter

    shard_counts = [int(part) for part in str(shards).split(",")
                    if part != ""]
    grid_report = InvariantReport()
    cells = [_drive_fleet_cell(count, steps, clients, seed, grid_report)
             for count in shard_counts]

    baseline = next((c for c in cells if c["shards"] == 1), cells[0])
    scaling = []
    for cell in cells:
        speedup = (baseline["makespan_ticks"] / cell["makespan_ticks"]
                   if cell["makespan_ticks"] else 0.0)
        scaling.append({
            "shards": cell["shards"],
            "sustained_req_per_s": cell["sustained_req_per_s"],
            "speedup": round(speedup, 3),
            "efficiency": round(speedup / cell["shards"], 3),
        })
    four = next((s for s in scaling if s["shards"] == 4), None)
    if four is not None:
        grid_report.expect(
            four["speedup"] >= 3.0, "scaling",
            f"4-shard speedup {four['speedup']} below the 3x bar",
            speedup=four["speedup"])

    # Equivalence: 1-shard fleet == plain terminating session.
    spec = get_scenario("mixed_flood").scaled(scale)
    fleet_tree = spec.build_tree(seed=seed)
    stream_specs = [request_spec(r)
                    for r in spec.stream(fleet_tree, seed=seed + 1)]
    fleet = FleetRouter(
        FleetConfig.of(shards=1, m_total=spec.m, w_total=spec.w,
                       u=spec.u),
        trees=[fleet_tree])
    fleet_records = fleet.serve_stream(
        TreeMirror(fleet_tree).requests(stream_specs))

    plain_tree = spec.build_tree(seed=seed)
    plain = ControllerSession(
        SessionConfig(controller=ControllerSpec(
            "terminating", m=spec.m, w=spec.w, u=spec.u)),
        tree=plain_tree)
    plain_records = [plain.serve(r)
                     for r in TreeMirror(plain_tree).requests(stream_specs)]

    equivalent = (
        fleet.tally() == plain.tally()
        and fleet.shards[0].counters.snapshot()
        == plain.controller.counters.snapshot()
        and [r.outcome.status for r in fleet_records]
        == [r.outcome.status for r in plain_records])
    grid_report.expect(
        equivalent, "equivalence",
        "1-shard fleet diverged from the plain session on "
        f"{spec.name} (tallies {fleet.tally()} vs {plain.tally()})")
    audit_report = fleet.audit()
    grid_report.expect(audit_report.passed, "fleet_audit",
                       f"equivalence cell: {audit_report.violations[:2]}")
    equivalence = {
        "scenario": spec.name, "requests": len(stream_specs),
        "tally": fleet.tally(), "equivalent": equivalent,
    }
    fleet.close(), plain.close()

    # Stress: forced transfers, live reclaim, and the reject wave.
    stress = FleetRouter(FleetConfig.of(
        shards=2, m_total=60, w_total=8, u=2048, tranche=10,
        weights=[3, 1], seed=seed))
    rng = random.Random(seed)
    for _ in range(4 * 60):
        client = f"client-{rng.randrange(8)}"
        tree = stress.tree_of(client)
        node = rng.choice(list(tree.nodes()))
        stress.serve(Request(RequestKind.ADD_LEAF, node), origin=client)
    stress_tally = stress.tally()
    stress_report = stress.audit()
    grid_report.expect(stress_report.passed, "fleet_audit",
                       f"stress cell: {stress_report.violations[:2]}")
    grid_report.expect(
        len(stress.ledger) >= 1, "transfers",
        "the skewed stress cell produced no cross-shard transfer")
    grid_report.expect(
        stress.reject_wave
        and stress.granted_total == stress.config.m_total, "reject_wave",
        f"stress cell: granted {stress.granted_total} of "
        f"{stress.config.m_total} at the wave (fleet waste must be 0)")

    reclaim = FleetRouter(FleetConfig.of(
        shards=2, m_total=40, w_total=4, u=2048, weights=[39, 1],
        seed=seed))
    starved = reclaim.shards[1]
    for _ in range(10):
        reclaim.serve(Request(RequestKind.ADD_LEAF, starved.tree.root))
    reclaim_kinds = sorted({entry.kind
                            for entry in reclaim.ledger.entries})
    reclaim_report = reclaim.audit()
    grid_report.expect(reclaim_report.passed, "fleet_audit",
                       f"reclaim cell: {reclaim_report.violations[:2]}")
    grid_report.expect(
        "reclaim" in reclaim_kinds, "transfers",
        f"no live-session reclaim flowed (kinds: {reclaim_kinds})")

    stress_section = {
        "tranche_cell": {
            "tally": stress_tally,
            "transfers": [e.snapshot() for e in stress.ledger.entries],
            "reject_wave": stress.reject_wave,
            "granted_total": stress.granted_total,
            "m_total": stress.config.m_total,
        },
        "reclaim_cell": {
            "transfer_kinds": reclaim_kinds,
            "transfers": [e.snapshot() for e in reclaim.ledger.entries],
        },
    }
    stress.close(), reclaim.close()

    document = {
        "scenario": "fleet",
        "tick_model": "1 tick = 1 us; busy = served + moves; "
                      "makespan = busiest shard",
        "cells": cells,
        "scaling": scaling,
        "equivalence": equivalence,
        "stress": stress_section,
        "invariants": grid_report.to_json(),
        "checks_run": sum(grid_report.checks.values()),
        "violations": len(grid_report.violations),
        "passed": grid_report.passed,
    }
    if not grid_report.passed:
        first = grid_report.violations[0]
        error = InvariantViolation(
            f"invariant violations in the fleet bench "
            f"({len(grid_report.violations)} total); first: "
            f"[{first.invariant}] {first.message}")
        error.document = document
        raise error
    return document


SCENARIOS = {
    "ancestry": run_ancestry,
    "move_complexity": run_move_complexity,
    "batch": run_batch,
    "scenario": run_scenario_bench,
    "scenario_grid": run_scenario_grid,
    "distributed_batch": run_distributed_batch,
    "kernel": run_kernel,
    "profile": run_profile,
    "memory": run_memory,
    "session": run_session_overhead,
    "apps": run_apps,
    "gateway": run_gateway,
    "fleet": run_fleet,
}
