"""Benchmark scenario implementations for ``python -m repro.bench``.

Each ``run_*`` function is pure measurement: it builds its workload,
runs it, and returns a JSON-serializable dict.  Wall-clock numbers are
the **minimum over ``repeats`` runs** (the standard way to suppress
scheduler noise); correctness-sensitive quantities (move counters,
outcome tallies) are additionally cross-checked between the engine and
legacy configurations, so a benchmark run doubles as an equivalence
check.
"""

import dataclasses
import random
import time
import zlib
from typing import Dict, List, Optional

from repro.core import kernel as controller_kernel
from repro.core.iterated import IteratedController
from repro.core.packages import MobilePackage, NodeStore
from repro.core.params import ControllerParams
from repro.core.requests import Request, RequestKind
from repro.distributed.controller import DistributedController
from repro.distributed.faults import FaultInjector, parse_fault_spec
from repro.metrics.fitting import log_log_slope, observation_3_4_bound
from repro.metrics.invariants import (
    CounterWatch,
    InvariantReport,
    audit_controller,
    tally_outcomes,
)
from repro.registry import CONTROLLER_FLAVORS, make_controller
from repro.sim.delays import make_delay_model
from repro.sim.policies import SCHEDULE_POLICIES, make_policy
from repro.sim.scheduler import Scheduler
from repro.workloads.catalogue import CATALOGUE, get_scenario
from repro.workloads.scenarios import (
    NodePicker,
    TreeMirror,
    build_caterpillar,
    build_path,
    build_random_tree,
    build_star,
    default_mix,
    grow_only_mix,
    random_request,
    request_spec,
    run_scenario,
)

DEFAULT_SIZES = [200, 400, 800, 1600, 3200]  # the bench_e02 sweep

_TOPOLOGIES = {
    "path": build_path,
    "random": build_random_tree,
    "star": build_star,
    "caterpillar": build_caterpillar,
}

_MIXES = {
    "default": default_mix,
    "grow": grow_only_mix,
    "plain": lambda: {RequestKind.PLAIN: 1.0},
}


def _build(topology: str, n: int, seed: int, skip_ancestry: bool):
    builder = _TOPOLOGIES[topology]
    if builder is build_random_tree:
        tree = builder(n, seed=seed)
    else:
        tree = builder(n)
    tree.skip_ancestry = skip_ancestry
    return tree


def _controller(kind: str, tree, m: int, w: int, u: int):
    """Registry-backed construction: every flavour speaks the protocol,
    so ``handle``/``handle_batch`` are uniform."""
    controller = make_controller(kind, tree, m=m, w=w, u=u)
    return controller, controller.handle, controller.handle_batch


# ----------------------------------------------------------------------
# ancestry — the acceptance benchmark of the request engine.
# ----------------------------------------------------------------------
def run_ancestry(sizes: Optional[List[int]] = None, repeats: int = 3,
                 seed: int = 0, steps_per_node: int = 2) -> Dict:
    """Deep-path request serving: engine vs legacy wall clock.

    A path of ``n`` nodes receives ``n * steps_per_node`` PLAIN requests
    at uniformly random nodes (a pre-generated stream — PLAIN requests
    leave the topology untouched, so the identical stream is replayed
    in both modes and only the controller is timed):

    * **legacy** — ``skip_ancestry=False``: the seed's data paths
      (naive parent-pointer walks, dict store probes, full filler
      climbs), driven by sequential ``handle``;
    * **engine** — ``skip_ancestry=True``: skip-pointer jump tables,
      slot-pinned stores, the indexed filler scan, driven by
      ``handle_batch``.

    Move counters and grant tallies are asserted identical between the
    two modes; the headline is the wall-clock ratio on the deepest
    path.
    """
    sizes = sizes or DEFAULT_SIZES
    rows = []
    for n in sizes:
        steps = n * steps_per_node
        timings = {}
        checks = {}
        for label, skip in (("legacy", False), ("engine", True)):
            best = None
            for _ in range(max(repeats, 1)):
                tree = _build("path", n, seed, skip)
                nodes = list(tree.nodes())
                rng = random.Random(seed + n)
                requests = [
                    Request(RequestKind.PLAIN,
                            nodes[rng.randrange(len(nodes))])
                    for _ in range(steps)
                ]
                controller = IteratedController(
                    tree, m=4 * n, w=n // 4, u=2 * n)
                start = time.perf_counter()
                if skip:
                    outcomes = controller.handle_batch(requests)
                else:
                    outcomes = [controller.handle(r) for r in requests]
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
                checks[label] = (
                    controller.counters.total,
                    sum(1 for o in outcomes if o.granted),
                )
            timings[label] = best
        if checks["legacy"] != checks["engine"]:
            raise AssertionError(
                f"engine diverged from legacy at n={n}: "
                f"{checks['engine']} != {checks['legacy']}"
            )
        rows.append({
            "n": n,
            "steps": steps,
            "legacy_ms": round(timings["legacy"] * 1000, 3),
            "engine_ms": round(timings["engine"] * 1000, 3),
            "speedup": round(timings["legacy"] / timings["engine"], 3),
            "moves": checks["engine"][0],
            "granted": checks["engine"][1],
        })
    return {
        "scenario": "ancestry",
        "params": {"sizes": sizes, "repeats": repeats, "seed": seed,
                   "steps_per_node": steps_per_node},
        "rows": rows,
        "deep_path_speedup": rows[-1]["speedup"],
        "max_speedup": max(r["speedup"] for r in rows),
    }


# ----------------------------------------------------------------------
# move_complexity — the bench_e02 sweep as a CLI one-liner.
# ----------------------------------------------------------------------
def run_move_complexity(sizes: Optional[List[int]] = None,
                        seed: int = 0) -> Dict:
    """Observation 3.4 on deep paths: moves vs ``O(U log^2 U log(M/W))``.

    Mirrors ``benchmarks/bench_e02_move_complexity.py``: sweep the path
    length under the default churn mix and report measured/bound ratios
    plus the log-log slope (near-linear growth expected).
    """
    sizes = sizes or DEFAULT_SIZES
    rows = []
    measured = []
    for n in sizes:
        tree = build_path(n)
        u, m, w = 2 * n, 4 * n, n // 4
        controller = IteratedController(tree, m=m, w=w, u=u)
        start = time.perf_counter()
        result = run_scenario(tree, controller.handle, steps=n, seed=n)
        elapsed = time.perf_counter() - start
        bound = observation_3_4_bound(u, m, w)
        moves = controller.counters.total
        measured.append(moves)
        rows.append({
            "n": n, "u": u, "m": m, "w": w,
            "moves": moves,
            "bound": int(bound),
            "ratio": round(moves / bound, 4),
            "granted": result.granted,
            "rejected": result.rejected,
            "wall_ms": round(elapsed * 1000, 3),
        })
    return {
        "scenario": "move_complexity",
        "params": {"sizes": sizes, "seed": seed},
        "rows": rows,
        "log_log_slope": round(log_log_slope(sizes, measured), 4),
        "max_ratio": max(r["ratio"] for r in rows),
    }


# ----------------------------------------------------------------------
# batch — handle_batch equivalence + throughput on a twin tree.
# ----------------------------------------------------------------------
def run_batch(n: int = 600, steps: int = 2000, batch_size: int = 64,
              topology: str = "random", mix: str = "default",
              seed: int = 0) -> Dict:
    """Sequential vs batched handling of the *same* request stream.

    Tree A is driven sequentially while the stream is recorded as
    tree-independent specs; tree B (a twin built identically) replays
    the stream through ``handle_batch`` in ``batch_size`` chunks via a
    lazily-resolved :class:`TreeMirror`.  Outcomes, grant tallies and
    move counters must match exactly — that equality is this PR's
    batch-semantics contract — and both wall clocks are reported.
    """
    mix_map = _MIXES[mix]()
    tree_a = _build(topology, n, seed, True)
    tree_b = _build(topology, n, seed, True)
    u, m, w = 4 * n, 4 * n, max(n // 4, 1)
    ctrl_a = IteratedController(tree_a, m=m, w=w, u=u)
    ctrl_b = IteratedController(tree_b, m=m, w=w, u=u)

    rng = random.Random(seed)
    picker = NodePicker(tree_a)
    mirror = TreeMirror(tree_b)
    outcomes_a = []
    specs = []
    start = time.perf_counter()
    sequential_time = 0.0
    for _ in range(steps):
        request = random_request(tree_a, rng, mix=mix_map, picker=picker)
        specs.append(request_spec(request))
        t0 = time.perf_counter()
        outcomes_a.append(ctrl_a.handle(request))
        sequential_time += time.perf_counter() - t0
    generation_time = time.perf_counter() - start - sequential_time
    picker.detach()

    outcomes_b = []
    start = time.perf_counter()
    for base in range(0, len(specs), batch_size):
        chunk = specs[base:base + batch_size]
        outcomes_b.extend(ctrl_b.handle_batch(mirror.requests(chunk)))
    batched_time = time.perf_counter() - start
    mirror.detach()

    status_a = [o.status.value for o in outcomes_a]
    status_b = [o.status.value for o in outcomes_b]
    if status_a != status_b:
        first = next(i for i, (a, b) in enumerate(zip(status_a, status_b))
                     if a != b)
        raise AssertionError(
            f"batched outcome diverged at step {first}: "
            f"{status_a[first]} != {status_b[first]}"
        )
    if ctrl_a.counters.snapshot() != ctrl_b.counters.snapshot():
        raise AssertionError(
            f"batched counters diverged: {ctrl_b.counters.snapshot()} "
            f"!= {ctrl_a.counters.snapshot()}"
        )
    return {
        "scenario": "batch",
        "params": {"n": n, "steps": steps, "batch_size": batch_size,
                   "topology": topology, "mix": mix, "seed": seed},
        "sequential_ms": round(sequential_time * 1000, 3),
        "batched_ms": round(batched_time * 1000, 3),
        "generation_ms": round(generation_time * 1000, 3),
        "granted": ctrl_a.granted,
        "rejected": ctrl_a.rejected,
        "moves": ctrl_a.counters.total,
        "outcomes_identical": True,
        "counters_identical": True,
        "requests_per_sec_batched": round(
            steps / batched_time if batched_time > 0 else float("inf"), 1),
    }


# ----------------------------------------------------------------------
# scenario — the generic knob-driven run.
# ----------------------------------------------------------------------
def run_scenario_bench(topology: str = "random", controller: str = "iterated",
                       mix: str = "default", n: int = 500, steps: int = 1000,
                       batch_size: int = 1, seed: int = 0,
                       skip_ancestry: bool = True,
                       m_factor: int = 4, w_divisor: int = 4) -> Dict:
    """Run one controller/topology/mix combination at a given scale."""
    tree = _build(topology, n, seed, skip_ancestry)
    u = 4 * n
    m = m_factor * n
    w = max(n // w_divisor, 1)
    ctrl, submit, submit_batch = _controller(controller, tree, m, w, u)
    start = time.perf_counter()
    result = run_scenario(
        tree, submit, steps=steps, seed=seed, mix=_MIXES[mix](),
        batch_size=batch_size,
        submit_batch=submit_batch if batch_size > 1 else None,
    )
    elapsed = time.perf_counter() - start
    counters = ctrl.counters.snapshot()
    return {
        "scenario": "scenario",
        "params": {"topology": topology, "controller": controller,
                   "mix": mix, "n": n, "steps": steps,
                   "batch_size": batch_size, "seed": seed,
                   "skip_ancestry": skip_ancestry, "m": m, "w": w, "u": u},
        "granted": result.granted,
        "rejected": result.rejected,
        "cancelled": result.cancelled,
        "pending": result.pending,
        "counters": counters,
        "tree_size": tree.size,
        "wall_ms": round(elapsed * 1000, 3),
        "requests_per_sec": round(
            steps / elapsed if elapsed > 0 else float("inf"), 1),
    }


# ----------------------------------------------------------------------
# distributed_batch — the request queue of the distributed engine.
# ----------------------------------------------------------------------
def run_distributed_batch(sizes: Optional[List[int]] = None,
                          requests_per_node: float = 0.5,
                          seed: int = 0) -> Dict:
    """Pipeline a concurrent batch through the distributed controller.

    All requests are injected up front (``submit_batch``); agents
    interleave under the locking discipline and the scheduler runs to
    quiescence.  Reported: grant tallies, message counters, and the
    simulated-time compression vs serving the batch one request at a
    time (sequential lower bound: the sum of per-request round trips).
    """
    sizes = sizes or [200, 400]
    rows = []
    for n in sizes:
        tree = build_random_tree(n, seed=seed)
        rng = random.Random(seed + n)
        nodes = list(tree.nodes())
        count = max(int(n * requests_per_node), 1)
        requests = [
            Request(RequestKind.PLAIN, nodes[rng.randrange(len(nodes))])
            for _ in range(count)
        ]
        controller = DistributedController(tree, m=4 * n, w=n, u=2 * n)
        start = time.perf_counter()
        outcomes = controller.submit_batch(requests)
        elapsed = time.perf_counter() - start
        rows.append({
            "n": n,
            "requests": count,
            "granted": sum(1 for o in outcomes if o.granted),
            "rejected": controller.rejected,
            "messages": controller.counters.total,
            "simulated_time": round(controller.scheduler.now, 3),
            "wall_ms": round(elapsed * 1000, 3),
        })
    return {
        "scenario": "distributed_batch",
        "params": {"sizes": sizes, "requests_per_node": requests_per_node,
                   "seed": seed},
        "rows": rows,
    }


# ----------------------------------------------------------------------
# scenario_grid — the adversarial catalogue x policy x seed sweep.
# ----------------------------------------------------------------------
# One shared tally shape everywhere (bench cells, differential checks):
# the exported repro.metrics.tally_outcomes.
_tally = tally_outcomes


def _cell_seed(*parts) -> int:
    """Stable per-cell seed (crc32, immune to PYTHONHASHSEED)."""
    return zlib.crc32(":".join(str(p) for p in parts).encode()) & 0x7FFFFFFF


def _materialize(spec, seed: int):
    """Build the reference tree and record the stream as replayable specs."""
    tree = spec.build_tree(seed=seed)
    stream = spec.stream(tree, seed=seed)
    return [request_spec(r) for r in stream]


def _replay_requests(spec, seed: int, stream_specs):
    """A fresh twin tree plus the stream resolved against it."""
    tree = spec.build_tree(seed=seed)
    mirror = TreeMirror(tree)
    requests = [mirror.request(s) for s in stream_specs]
    mirror.detach()
    return tree, requests


def run_scenario_grid(name: str = "all",
                      policy: str = "fifo,random,adversary",
                      seeds: str = "0,1,2,3,4",
                      faults: Optional[str] = None,
                      engines: str = "iterated,distributed",
                      delays: str = "uniform",
                      stagger: float = 0.25,
                      scale: float = 1.0) -> Dict:
    """The adversarial grid: scenario x engine x schedule policy x seed.

    Every cell replays the *identical* pre-generated stream (recorded as
    tree-independent specs, resolved against a twin tree per cell).
    Centralized-family engines ignore the schedule policy (they are
    synchronous) and run once per scenario x seed; the distributed
    engine runs once per policy, optionally under a fault plan
    (``faults`` spec string, e.g. ``"stall=0.05,pauses=2,storms=3"``;
    an unset horizon auto-resolves per cell to the run's span).  The
    differential reference is the *first core engine listed* in
    ``engines`` (iterated by default); ``summary.differential_checks``
    records how many cross-checks actually ran — 0 when no core engine
    is in the list.

    Each cell is audited by the invariant checker (safety, waste,
    conservation, package shape, lock ordering) plus a streaming
    counter-monotonicity watch; cancellation-free scenarios additionally
    cross-check the distributed grant totals against the centralized
    reference (equal when nothing was rejected, both within the waste
    window otherwise).  The run **raises** on any violation — a bench
    invocation doubles as a correctness gate — and the JSON document
    records the full per-cell evidence.
    """
    names = list(CATALOGUE) if name == "all" else [
        part.strip() for part in name.split(",") if part.strip()]
    for scenario_name in names:
        get_scenario(scenario_name)  # fail fast on typos, before any cell
    policies = [part.strip() for part in policy.split(",") if part.strip()]
    for pol in policies:
        if pol not in SCHEDULE_POLICIES:
            raise ValueError(
                f"unknown policy {pol!r}; known: {', '.join(SCHEDULE_POLICIES)}")
    seed_list = [int(part) for part in str(seeds).split(",") if part != ""]
    # Engines resolve against the public controller registry; ``all``
    # sweeps every registered flavour.  Validation is eager — before any
    # cell runs — so a typo fails in milliseconds, not mid-grid.
    if engines.strip() == "all":
        engine_list = list(CONTROLLER_FLAVORS)
    else:
        engine_list = [part.strip().replace("-", "_")
                       for part in engines.split(",") if part.strip()]
    for engine in engine_list:
        if engine not in CONTROLLER_FLAVORS:
            raise ValueError(
                f"unknown engine {engine!r}; registered controller "
                f"flavors: {', '.join(CONTROLLER_FLAVORS)} (or 'all')")
    fault_plan = parse_fault_spec(faults)

    cells: List[Dict] = []
    grid_report = InvariantReport()
    start_all = time.perf_counter()
    for scenario_name in names:
        spec = get_scenario(scenario_name)
        if scale != 1.0:
            spec = spec.scaled(scale)
        for seed in seed_list:
            stream_specs = _materialize(spec, seed)
            reference: Optional[Dict] = None
            stream_cancel_free = all(
                kind in (RequestKind.PLAIN, RequestKind.ADD_LEAF)
                for kind, _node, _child in stream_specs)
            for engine in engine_list:
                if engine != "distributed":
                    cell = _run_core_cell(spec, seed, engine, stream_specs,
                                          grid_report)
                    if reference is None:
                        reference = cell
                    cells.append(cell)
                    continue
                for pol in policies:
                    cell = _run_distributed_cell(
                        spec, seed, pol, stream_specs, fault_plan, delays,
                        stagger, grid_report)
                    _cross_check(cell, spec, reference,
                                 stream_cancel_free, fault_plan, grid_report)
                    cells.append(cell)
    wall_s = time.perf_counter() - start_all

    document = {
        "scenario": "scenario_grid",
        "params": {
            "names": names, "policies": policies, "seeds": seed_list,
            "engines": engine_list, "faults": fault_plan.snapshot(),
            "delays": delays, "stagger": stagger, "scale": scale,
        },
        "cells": cells,
        "invariants": grid_report.to_json(),
        "summary": {
            "cells": len(cells),
            "checks_run": sum(grid_report.checks.values()),
            # Broken out so its *absence* is visible: without a core
            # engine in --engines (or with only cancellation-prone
            # streams) no differential check runs, and "passed" alone
            # would overstate what was certified.
            "differential_checks": grid_report.checks.get("differential", 0),
            "violations": len(grid_report.violations),
            "passed": grid_report.passed,
            "wall_s": round(wall_s, 3),
        },
    }
    if not grid_report.passed:
        first = grid_report.violations[0]
        error = AssertionError(
            f"invariant violations in scenario grid "
            f"({len(grid_report.violations)} total); first: "
            f"[{first.invariant}] {first.message}"
        )
        # The per-cell evidence matters most on failure: attach the full
        # document so the CLI can still honour --out before re-raising.
        error.document = document
        raise error
    return document


def _run_core_cell(spec, seed: int, engine: str, stream_specs,
                   grid_report: InvariantReport) -> Dict:
    tree, requests = _replay_requests(spec, seed, stream_specs)
    controller = make_controller(engine, tree, m=spec.m, w=spec.w, u=spec.u)
    watch = CounterWatch(controller.counters, report=grid_report)
    submit = controller.handle
    start = time.perf_counter()
    outcomes = []
    for request in requests:
        outcomes.append(submit(request))
        watch.observe()
    wall = time.perf_counter() - start
    audit_controller(controller, grid_report)
    cell = {
        "scenario": spec.name, "seed": seed, "engine": engine,
        "policy": None, "cost": controller.counters.total,
        "wall_ms": round(wall * 1000, 3),
    }
    cell.update(_tally(outcomes))
    return cell


def _run_distributed_cell(spec, seed: int, policy: str, stream_specs,
                          fault_plan, delays: str, stagger: float,
                          grid_report: InvariantReport) -> Dict:
    cell_seed = _cell_seed(spec.name, seed, policy, "distributed")
    tree, requests = _replay_requests(spec, seed, stream_specs)
    scheduler = Scheduler(policy=make_policy(policy, seed=cell_seed))
    injector = None
    if not fault_plan.is_noop:
        # Auto horizon: the submission window plus a flight-time margin,
        # so pauses/storms land while agents are actually mid-climb
        # rather than bunching into the first instants of a long run.
        span = len(requests) * stagger + 4 * spec.n
        injector = FaultInjector(dataclasses.replace(
            fault_plan.resolved(span),
            seed=int(fault_plan.seed) ^ cell_seed))
    controller = DistributedController(
        tree, m=spec.m, w=spec.w, u=spec.u, scheduler=scheduler,
        delays=make_delay_model(delays, seed=cell_seed),
        faults=injector)
    watch = CounterWatch(controller.counters, report=grid_report)
    resolved: Dict[int, object] = {}

    def settle(outcome) -> None:
        resolved[outcome.request.request_id] = outcome
        watch.observe()

    start = time.perf_counter()
    for position, request in enumerate(requests):
        controller.submit(request, delay=position * stagger,
                          callback=settle)
    controller.run()
    wall = time.perf_counter() - start
    grid_report.expect(
        len(resolved) == len(requests), "liveness",
        f"{spec.name}/{policy}/seed={seed}: "
        f"{len(requests) - len(resolved)} requests never resolved",
        scenario=spec.name, policy=policy, seed=seed)
    audit_controller(controller, grid_report)
    cell = {
        "scenario": spec.name, "seed": seed, "engine": "distributed",
        "policy": policy, "cost": controller.counters.total,
        "simulated_time": round(controller.scheduler.now, 3),
        "wall_ms": round(wall * 1000, 3),
    }
    if injector is not None:
        cell["fault_stats"] = dict(injector.stats)
    cell.update(_tally(resolved.values()))
    return cell


def _cross_check(cell: Dict, spec, reference: Optional[Dict],
                 cancel_free: bool, fault_plan,
                 grid_report: InvariantReport) -> None:
    """Differential check against the centralized reference.

    Only the guarantees the paper actually makes are asserted: for
    cancellation-free streams (PLAIN/ADD_LEAF only, no event can lose
    its meaning) a pair of runs in which *neither* engine rejected must
    grant the identical count, and any rejecting run must sit inside
    the waste window ``[M - W, M]``.  Fault plans mutate the tree and
    the timing outside the request stream, so the equal-grants check is
    skipped there (the waste window still applies).
    """
    if reference is None or not cancel_free:
        return
    label = f"{spec.name}/{cell['policy']}/seed={cell['seed']}"
    if (cell["rejected"] == 0 and reference["rejected"] == 0
            and fault_plan.is_noop):
        grid_report.expect(
            cell["granted"] == reference["granted"], "differential",
            f"{label}: reject-free distributed run granted "
            f"{cell['granted']}, centralized reference "
            f"{reference['granted']}",
            scenario=spec.name, policy=cell["policy"], seed=cell["seed"])
    elif cell["rejected"] > 0:
        grid_report.expect(
            cell["granted"] >= spec.m - spec.w, "differential",
            f"{label}: rejecting run granted {cell['granted']}, below "
            f"waste window floor {spec.m - spec.w}",
            scenario=spec.name, policy=cell["policy"], seed=cell["seed"])


# ----------------------------------------------------------------------
# kernel — distributed filler lookup, before/after the level index.
# ----------------------------------------------------------------------
def run_kernel(scenario: str = "deep_burst", seeds: str = "0,1",
               repeats: int = 3, stagger: float = 0.25) -> Dict:
    """Indexed vs linear filler lookup on the distributed hot path.

    Two measurements, both on the named catalogue scenario (deep_burst
    by default — deep paths, so agents climb far and whiteboards near
    the root accumulate parked packages):

    * **end-to-end**: the identical pre-generated stream is pushed
      through ``submit_batch`` twice per seed, once with the kernel's
      level-windowed lookup (``indexed``) and once with the legacy
      linear board scan (``scan``); outcome tallies and message
      counters are asserted identical — the lookup is a pure constant-
      factor change — and the wall clocks (min over ``repeats``) are
      compared;
    * **lookup microbench**: a store parked with one package per level
      answers a sweep of window queries through both code paths, which
      isolates the per-lookup cost from scheduler overhead.
    """
    spec = get_scenario(scenario)
    seed_list = [int(part) for part in str(seeds).split(",") if part != ""]
    cells: List[Dict] = []
    for seed in seed_list:
        stream_specs = _materialize(spec, seed)
        timings: Dict[str, float] = {}
        checks: Dict[str, object] = {}
        for label, indexed in (("scan", False), ("indexed", True)):
            best: Optional[float] = None
            for _ in range(max(repeats, 1)):
                tree, requests = _replay_requests(spec, seed, stream_specs)
                controller = DistributedController(
                    tree, m=spec.m, w=spec.w, u=spec.u,
                    indexed_stores=indexed)
                start = time.perf_counter()
                outcomes = controller.submit_batch(requests,
                                                   stagger=stagger)
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
                checks[label] = (tuple(sorted(_tally(outcomes).items())),
                                 controller.counters.total)
                controller.detach()
            timings[label] = best or 0.0
        if checks["scan"] != checks["indexed"]:
            raise AssertionError(
                f"indexed lookup diverged from the scan at seed={seed}: "
                f"{checks['indexed']} != {checks['scan']}")
        tally, messages = checks["indexed"]
        cells.append({
            "scenario": spec.name, "seed": seed,
            "scan_ms": round(timings["scan"] * 1000, 3),
            "indexed_ms": round(timings["indexed"] * 1000, 3),
            "speedup": round(timings["scan"] / timings["indexed"], 3)
            if timings["indexed"] > 0 else float("inf"),
            "messages": messages, "tally": dict(tally),
        })

    # Lookup microbench: every level parked, every window queried.
    params = ControllerParams(m=spec.m, w=spec.w, u=spec.u)
    store = NodeStore()
    for level in range(params.max_level + 1):
        controller_kernel.park(
            store, MobilePackage(level=level,
                                 size=params.mobile_size(level)))
    dists = []
    for level in range(params.max_level + 1):
        low = (1 << level) * params.psi
        dists.extend([low // 2 + 1, low + 1, 2 * low])
    rounds = max(50_000 // len(dists), 1)
    lookup = {}
    for label, fn in (("scan", controller_kernel.scan_filler),
                      ("indexed", controller_kernel.peek_filler)):
        start = time.perf_counter()
        for _ in range(rounds):
            for dist in dists:
                fn(store, dist, params)
        lookup[label] = time.perf_counter() - start
    queries = rounds * len(dists)
    for dist in dists:  # the two paths must agree query-for-query
        if (controller_kernel.scan_filler(store, dist, params)
                is not controller_kernel.peek_filler(store, dist, params)):
            raise AssertionError(f"lookup paths disagree at dist={dist}")

    return {
        "scenario": "kernel",
        "params": {"scenario": scenario, "seeds": seed_list,
                   "repeats": repeats, "stagger": stagger,
                   "m": spec.m, "w": spec.w, "u": spec.u, "n": spec.n},
        "cells": cells,
        "run_speedup_min": min(c["speedup"] for c in cells),
        "run_speedup_max": max(c["speedup"] for c in cells),
        "lookup": {
            "queries": queries,
            "parked_levels": params.max_level + 1,
            "scan_ms": round(lookup["scan"] * 1000, 3),
            "indexed_ms": round(lookup["indexed"] * 1000, 3),
            "speedup": round(lookup["scan"] / lookup["indexed"], 3)
            if lookup["indexed"] > 0 else float("inf"),
        },
        "equivalent": True,
    }


SCENARIOS = {
    "ancestry": run_ancestry,
    "move_complexity": run_move_complexity,
    "batch": run_batch,
    "scenario": run_scenario_bench,
    "scenario_grid": run_scenario_grid,
    "distributed_batch": run_distributed_batch,
    "kernel": run_kernel,
}
