"""Measurement utilities: move/message counters and bound fitting."""

from repro.metrics.counters import MoveCounters, MessageCounters, MemoryAudit
from repro.metrics.fitting import bound_ratio, log_log_slope, amortized_series

__all__ = [
    "MoveCounters",
    "MessageCounters",
    "MemoryAudit",
    "bound_ratio",
    "log_log_slope",
    "amortized_series",
]
