"""Measurement utilities: move/message counters and bound fitting."""

from repro.metrics.counters import MoveCounters, MessageCounters, MemoryAudit
from repro.metrics.fitting import bound_ratio, log_log_slope, amortized_series
from repro.metrics.invariants import (
    CounterWatch,
    InvariantReport,
    Violation,
    audit_controller,
    audit_fleet,
    audit_outcomes,
    audit_tallies,
    tally_outcomes,
)

__all__ = [
    "CounterWatch",
    "InvariantReport",
    "Violation",
    "audit_controller",
    "audit_fleet",
    "audit_outcomes",
    "audit_tallies",
    "tally_outcomes",
    "MoveCounters",
    "MessageCounters",
    "MemoryAudit",
    "bound_ratio",
    "log_log_slope",
    "amortized_series",
]
