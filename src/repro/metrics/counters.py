"""Cost counters for the two execution models.

Centralized executions are charged in *moves* (Section 2.2: one move
transfers an arbitrary set of objects one hop); distributed executions are
charged in *messages* of O(log N) bits.  Keeping the breakdown per cause
lets the benches report exactly which term of each theorem dominates.
"""

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class MoveCounters:
    """Move-complexity accounting for the centralized controller.

    Attributes mirror the cost sources enumerated in Lemma 3.3:

    * ``package_moves`` — hops travelled by permit packages during
      ``Proc`` distribution (the dominant term);
    * ``relocation_moves`` — one move per deletion that carried packages
      to the deleted node's parent ("at most U" in the lemma);
    * ``reject_moves`` — delivering reject packages to every node
      ("at most U" in the lemma);
    * ``reset_moves`` — clearing the data structure between the halving
      iterations of Observation 3.4 and between the unknown-U epochs of
      Theorem 3.5.
    """

    package_moves: int = 0
    relocation_moves: int = 0
    reject_moves: int = 0
    reset_moves: int = 0

    @property
    def total(self) -> int:
        return (self.package_moves + self.relocation_moves
                + self.reject_moves + self.reset_moves)

    def merge(self, other: "MoveCounters") -> None:
        """Accumulate another counter set into this one."""
        self.package_moves += other.package_moves
        self.relocation_moves += other.relocation_moves
        self.reject_moves += other.reject_moves
        self.reset_moves += other.reset_moves

    def snapshot(self) -> Dict[str, int]:
        return {
            "package_moves": self.package_moves,
            "relocation_moves": self.relocation_moves,
            "reject_moves": self.reject_moves,
            "reset_moves": self.reset_moves,
            "total": self.total,
        }


@dataclass
class MessageCounters:
    """Message-complexity accounting for the distributed controller.

    * ``agent_hops`` — each hop of a request agent is one message
      (Section 4.4.1: messages are used only to move the agents);
    * ``reject_messages`` — the reject-wave broadcast;
    * ``broadcast_messages`` — broadcast/upcast rounds (termination
      detection, counting, resets; Appendix A);
    * ``relocation_messages`` — moving a deleted node's data structure to
      its parent, ``O(deg(v) + log^2 U)`` messages per deletion
      (discussion after Lemma 4.5).
    """

    agent_hops: int = 0
    reject_messages: int = 0
    broadcast_messages: int = 0
    relocation_messages: int = 0

    @property
    def total(self) -> int:
        return (self.agent_hops + self.reject_messages
                + self.broadcast_messages + self.relocation_messages)

    def merge(self, other: "MessageCounters") -> None:
        self.agent_hops += other.agent_hops
        self.reject_messages += other.reject_messages
        self.broadcast_messages += other.broadcast_messages
        self.relocation_messages += other.relocation_messages

    def snapshot(self) -> Dict[str, int]:
        return {
            "agent_hops": self.agent_hops,
            "reject_messages": self.reject_messages,
            "broadcast_messages": self.broadcast_messages,
            "relocation_messages": self.relocation_messages,
            "total": self.total,
        }


@dataclass
class MemoryAudit:
    """Per-node memory audit in bits, for Claim 4.8.

    The claim: each node ``v`` needs
    ``O(deg(v) * log N + log^3 N + log^2 U)`` bits.  The audit records the
    *measured* bit requirement of each node's state (packages encoded as
    per-level counts, the static pool as one integer, queue entries at
    O(log N) bits each) so the bench can report measured/bound ratios.
    """

    samples: List[Dict[str, float]] = field(default_factory=list)

    def record(self, node_id: int, degree: int, bits: float) -> None:
        self.samples.append({
            "node_id": node_id,
            "degree": degree,
            "bits": bits,
        })

    def worst_ratio(self, log_n: float, log_u: float) -> float:
        """max over samples of measured_bits / bound(deg, logN, logU)."""
        worst = 0.0
        for sample in self.samples:
            bound = (sample["degree"] * log_n + log_n ** 3 + log_u ** 2)
            if bound > 0:
                worst = max(worst, sample["bits"] / bound)
        return worst
