"""Run-auditing invariant checker for every controller flavour.

The paper's guarantees are worst-case over adversarial request streams
and schedules, so every run — friendly or adversarial, centralized or
distributed — must satisfy:

* **safety** (Definition, Section 2.2): at most ``M`` permits granted;
* **waste** (liveness): once anything has been rejected, at least
  ``M - W`` permits must have been granted — i.e. at most ``W`` permits
  are wasted;
* **conservation**: permits are neither created nor destroyed by
  package splits, graceful hand-overs, stage/epoch rollovers — granted
  plus root storage plus parked packages always totals ``M``;
* **package shape** (Section 3.1): every parked mobile package of level
  ``i`` holds exactly ``2^i * phi`` permits;
* **lock ordering** (Section 4.3.1, distributed only): a locked node's
  holder carries that node on its locked path, queued agents are in the
  WAITING state, and a quiescent engine holds no locks and no waiters;
* **counter monotonicity**: move/message counters never decrease
  (checked in stream via :class:`CounterWatch`).

The checker is deliberately import-light: controllers are recognized
structurally (``boards`` implies the distributed engine, ``stages_run``
the halving wrapper, ...), so :mod:`repro.metrics` never imports
:mod:`repro.core` and the dependency graph stays acyclic.  The report
is JSON-serializable for the bench CLI's grid runs.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Violation:
    """One failed invariant check."""

    invariant: str
    message: str
    context: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {"invariant": self.invariant, "message": self.message,
                "context": dict(self.context)}


@dataclass
class InvariantReport:
    """Outcome of auditing one run (or one slice of a grid)."""

    checks: Dict[str, int] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def count(self, invariant: str) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + 1

    def fail(self, invariant: str, message: str, **context) -> None:
        self.violations.append(Violation(invariant, message, context))

    def expect(self, condition: bool, invariant: str, message: str,
               **context) -> None:
        self.count(invariant)
        if not condition:
            self.fail(invariant, message, **context)

    def merge(self, other: "InvariantReport") -> "InvariantReport":
        for name, count in other.checks.items():
            self.checks[name] = self.checks.get(name, 0) + count
        self.violations.extend(other.violations)
        return self

    def to_json(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "checks": dict(self.checks),
            "violations": [v.to_json() for v in self.violations],
        }


# ----------------------------------------------------------------------
# Controller audits (structural dispatch).
# ----------------------------------------------------------------------
def audit_controller(controller, report: Optional[InvariantReport] = None
                     ) -> InvariantReport:
    """Audit any controller flavour; dispatches structurally.

    Recognized shapes: the distributed engine (``boards``), the halving
    wrapper (``stages_run``), the unknown-U wrapper (``epochs_run``),
    the terminating wrapper (``terminated`` + ``inner``), and the plain
    centralized controller (``stores``).
    """
    report = report if report is not None else InvariantReport()
    if hasattr(controller, "boards"):
        return _audit_distributed(controller, report)
    if hasattr(controller, "epochs_run") and hasattr(controller, "_inner"):
        return _audit_adaptive(controller, report)
    if hasattr(controller, "stages_run") and hasattr(controller, "_inner"):
        return _audit_iterated(controller, report)
    if hasattr(controller, "terminated") and hasattr(controller, "inner"):
        return _audit_terminating(controller, report)
    if hasattr(controller, "_stage"):      # distributed halving wrapper
        _check_safety_and_waste(report, controller.granted,
                                controller.rejected, controller.m,
                                controller.w, "distributed-iterated")
        if controller._stage is not None:
            _audit_distributed(controller._stage, report)
        return report
    if hasattr(controller, "_main"):       # distributed unknown-U wrapper
        _check_safety_and_waste(report, controller.granted,
                                controller.rejected, controller.m,
                                controller.w, "distributed-adaptive")
        if controller._main is not None:
            _audit_distributed(controller._main, report)
        return report
    if hasattr(controller, "stores"):
        return _audit_centralized(controller, report)
    report.fail("dispatch",
                f"unrecognized controller type {type(controller).__name__}")
    return report


def _check_safety_and_waste(report: InvariantReport, granted: int,
                            rejected: int, m: int, w: int, label: str
                            ) -> None:
    report.expect(granted <= m, "safety",
                  f"{label}: granted {granted} exceeds M={m}",
                  granted=granted, m=m)
    if rejected > 0:
        report.expect(granted >= m - w, "waste",
                      f"{label}: rejected with only {granted} grants; "
                      f"waste bound requires >= {m - w}",
                      granted=granted, rejected=rejected, m=m, w=w)
    else:
        report.count("waste")


def _check_store_packages(report: InvariantReport, stores, params,
                          label: str) -> None:
    """Parked mobile packages have the Section 3.1 shape."""
    for node, store in stores.items():
        for package in store.mobile:
            expected = params.mobile_size(package.level)
            report.expect(
                package.size == expected, "packages",
                f"{label}: level-{package.level} package holds "
                f"{package.size} permits, expected {expected}",
                node=getattr(node, "node_id", None), level=package.level)
        report.expect(store.static_permits >= 0, "packages",
                      f"{label}: negative static pool",
                      node=getattr(node, "node_id", None),
                      static=store.static_permits)


def _audit_centralized(controller, report: InvariantReport,
                       label: str = "centralized") -> InvariantReport:
    m = controller.params.m
    w = controller.params.w
    _check_safety_and_waste(report, controller.granted, controller.rejected,
                            m, w, label)
    parked = controller.stores.total_parked_permits()
    total = controller.granted + controller.storage + parked
    report.expect(total == m, "conservation",
                  f"{label}: granted {controller.granted} + storage "
                  f"{controller.storage} + parked {parked} = {total} != M={m}",
                  granted=controller.granted, storage=controller.storage,
                  parked=parked, m=m)
    _check_store_packages(report, controller.stores, controller.params, label)
    return report


def _audit_iterated(controller, report: InvariantReport,
                    label: str = "iterated") -> InvariantReport:
    _check_safety_and_waste(report, controller.granted, controller.rejected,
                            controller.m, controller.w, label)
    inner = controller._inner
    if inner is not None:
        # Wrapper-level conservation: the total budget equals grants made
        # in finished stages plus the live stage's full budget ...
        report.expect(
            controller.m == controller._granted_before_stage + inner.params.m,
            "conservation",
            f"{label}: stage budget {inner.params.m} + prior grants "
            f"{controller._granted_before_stage} != M={controller.m}",
            m=controller.m, stage_m=inner.params.m,
            prior=controller._granted_before_stage)
        # ... and the live stage conserves its own budget exactly.
        _audit_centralized(inner, report, label=f"{label}/stage")
    elif controller._trivial_active:
        total = (controller._granted_before_stage
                 + controller._trivial_storage)
        report.expect(total == controller.m, "conservation",
                      f"{label}: trivial-stage storage "
                      f"{controller._trivial_storage} + grants != M",
                      total=total, m=controller.m)
    return report


def _audit_adaptive(controller, report: InvariantReport) -> InvariantReport:
    _check_safety_and_waste(report, controller.granted, controller.rejected,
                            controller.m, controller.w, "adaptive")
    inner = controller._inner
    if inner is not None:
        report.expect(
            controller.m == controller._granted_before_epoch + inner.m,
            "conservation",
            f"adaptive: epoch budget {inner.m} + prior grants "
            f"{controller._granted_before_epoch} != M={controller.m}",
            m=controller.m, epoch_m=inner.m,
            prior=controller._granted_before_epoch)
        _audit_iterated(inner, report, label="adaptive/epoch")
    return report


def _audit_terminating(controller, report: InvariantReport
                       ) -> InvariantReport:
    inner = controller.inner
    m = inner.params.m
    w = inner.params.w
    report.expect(controller.granted <= m, "safety",
                  f"terminating: granted {controller.granted} > M={m}",
                  granted=controller.granted, m=m)
    if controller.terminated:
        # Observation 2.1: at termination between M - W and M permits
        # were granted (the terminating analogue of the waste bound).
        report.expect(controller.granted >= m - w, "waste",
                      f"terminating: terminated with {controller.granted} "
                      f"grants, bound requires >= {m - w}",
                      granted=controller.granted, m=m, w=w)
    else:
        report.count("waste")
    parked = inner.stores.total_parked_permits()
    total = controller.granted + inner.storage + parked
    report.expect(total == m, "conservation",
                  f"terminating: granted + storage + parked = {total} "
                  f"!= M={m}",
                  granted=controller.granted, storage=inner.storage,
                  parked=parked, m=m)
    _check_store_packages(report, inner.stores, inner.params, "terminating")
    return report


def _audit_distributed(controller, report: InvariantReport
                       ) -> InvariantReport:
    m = controller.params.m
    w = controller.params.w
    label = "distributed"
    _check_safety_and_waste(report, controller.granted, controller.rejected,
                            m, w, label)
    quiescent = controller.active_agents == 0
    if quiescent:
        # Conservation is a quiescent-state property: while agents are
        # mid-distribution their Bag carries permits that are neither
        # root storage nor parked.
        parked = controller.boards.total_parked_permits()
        total = controller.granted + controller.storage + parked
        report.expect(total == m, "conservation",
                      f"{label}: granted {controller.granted} + storage "
                      f"{controller.storage} + parked {parked} = {total} "
                      f"!= M={m}",
                      granted=controller.granted,
                      storage=controller.storage, parked=parked, m=m)
    _check_lock_ordering(controller, report, quiescent)
    # Package shape + orphan audit over every whiteboard.
    for node, board in controller.boards.items():
        alive = node in controller.tree
        report.expect(
            alive or board.is_empty, "locks",
            f"{label}: dead node {node.node_id} still holds state "
            "(orphaned store/lock/queue)",
            node=node.node_id)
        for package in board.store.mobile:
            expected = controller.params.mobile_size(package.level)
            report.expect(
                package.size == expected, "packages",
                f"{label}: level-{package.level} package holds "
                f"{package.size} permits, expected {expected}",
                node=node.node_id, level=package.level)
    return report


def _check_lock_ordering(controller, report: InvariantReport,
                         quiescent: bool) -> None:
    """Section 4.3.1 locking discipline over the whiteboards."""
    for node, board in controller.boards.items():
        holder = board.locked_by
        if holder is not None:
            report.expect(
                node in holder.path, "locks",
                f"locked node {node.node_id} not on holder's path "
                f"(agent {holder.agent_id})",
                node=node.node_id, agent=holder.agent_id)
            report.expect(
                holder.state.value != "done", "locks",
                f"finished agent {holder.agent_id} still holds the lock "
                f"of node {node.node_id}",
                node=node.node_id, agent=holder.agent_id)
        report.expect(
            holder is not None or not board.queue, "locks",
            f"unlocked node {node.node_id} has {len(board.queue)} waiters",
            node=node.node_id)
        for waiter in board.queue:
            report.expect(
                waiter.state.value == "waiting", "locks",
                f"queued agent {waiter.agent_id} at node {node.node_id} "
                f"is {waiter.state.value}, not waiting",
                node=node.node_id, agent=waiter.agent_id)
        if quiescent:
            report.expect(
                holder is None and not board.queue, "locks",
                f"quiescent engine: node {node.node_id} still locked "
                "or queued",
                node=node.node_id)


# ----------------------------------------------------------------------
# Outcome-tally audit (works on ScenarioResult or raw numbers).
# ----------------------------------------------------------------------
def audit_tallies(granted: int, rejected: int, m: int, w: int,
                  report: Optional[InvariantReport] = None
                  ) -> InvariantReport:
    """Safety + waste from outcome tallies alone (engine-agnostic)."""
    report = report if report is not None else InvariantReport()
    _check_safety_and_waste(report, granted, rejected, m, w, "tallies")
    return report


# ----------------------------------------------------------------------
# Streaming counter monotonicity.
# ----------------------------------------------------------------------
class CounterWatch:
    """Asserts a counter set only ever grows.

    Call :meth:`observe` after every request (scenario drivers hook it
    into ``on_step``); each observation compares the counter snapshot
    against the previous one component-wise.
    """

    def __init__(self, counters, report: Optional[InvariantReport] = None):
        self._counters = counters
        self.report = report if report is not None else InvariantReport()
        self._last = counters.snapshot()

    def observe(self, *_args) -> None:
        current = self._counters.snapshot()
        for name, value in current.items():
            previous = self._last.get(name, 0)
            self.report.expect(
                value >= previous, "monotonicity",
                f"counter {name} decreased from {previous} to {value}",
                counter=name, before=previous, after=value)
        self._last = current
