"""Run-auditing invariant checker for every controller flavour.

The paper's guarantees are worst-case over adversarial request streams
and schedules, so every run — friendly or adversarial, centralized or
distributed — must satisfy:

* **safety** (Definition, Section 2.2): at most ``M`` permits granted;
* **waste** (liveness): once anything has been rejected, at least
  ``M - W`` permits must have been granted — i.e. at most ``W`` permits
  are wasted;
* **conservation**: permits are neither created nor destroyed by
  package splits, graceful hand-overs, stage/epoch rollovers — granted
  plus root storage plus parked packages always totals ``M``;
* **package shape** (Section 3.1): every parked mobile package of level
  ``i`` holds exactly ``2^i * phi`` permits;
* **lock ordering** (Section 4.3.1, distributed only): a locked node's
  holder carries that node on its locked path, queued agents are in the
  WAITING state, and a quiescent engine holds no locks and no waiters;
* **counter monotonicity**: move/message counters never decrease
  (checked in stream via :class:`CounterWatch`).

Dispatch is protocol-based: every controller flavour implements
:meth:`repro.protocol.ControllerProtocol.introspect`, returning a
:class:`repro.protocol.ControllerView` that *declares* its auditable
state — tallies, root storage, package stores or whiteboards, the
wrapper budget split, and nested controllers.  The auditor walks that
declaration recursively; no structural probing of private attributes.
The checker stays import-light (:mod:`repro.protocol` is typing-only),
so :mod:`repro.metrics` never imports :mod:`repro.core` and the
dependency graph stays acyclic.  The report is JSON-serializable for
the bench CLI's grid runs.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.protocol import AppView, ControllerView, StoreMapLike


@dataclass
class Violation:
    """One failed invariant check."""

    invariant: str
    message: str
    context: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {"invariant": self.invariant, "message": self.message,
                "context": dict(self.context)}


@dataclass
class InvariantReport:
    """Outcome of auditing one run (or one slice of a grid)."""

    checks: Dict[str, int] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def count(self, invariant: str) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + 1

    def fail(self, invariant: str, message: str,
             **context: object) -> None:
        self.violations.append(Violation(invariant, message, context))

    def expect(self, condition: bool, invariant: str, message: str,
               **context: object) -> None:
        self.count(invariant)
        if not condition:
            self.fail(invariant, message, **context)

    def merge(self, other: "InvariantReport") -> "InvariantReport":
        for name, count in other.checks.items():
            self.checks[name] = self.checks.get(name, 0) + count
        self.violations.extend(other.violations)
        return self

    def to_json(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "checks": dict(self.checks),
            "violations": [v.to_json() for v in self.violations],
        }


# ----------------------------------------------------------------------
# Controller audits (protocol-based dispatch).
# ----------------------------------------------------------------------
def audit_controller(controller: object,
                     report: Optional[InvariantReport] = None
                     ) -> InvariantReport:
    """Audit any controller flavour through its ``introspect()`` view.

    The controller declares its auditable state as a
    :class:`repro.protocol.ControllerView`; the auditor checks what the
    declaration contains — safety and waste always, the wrapper budget
    split when ``budget`` is present, centralized conservation and
    package shapes when ``storage``/``stores`` are, the distributed
    board/lock audits when ``boards`` is — and recurses into declared
    ``children`` (live stages, epochs, parallel engines).
    """
    report = report if report is not None else InvariantReport()
    introspect = getattr(controller, "introspect", None)
    if introspect is None:
        report.fail(
            "dispatch",
            f"controller type {type(controller).__name__} does not "
            "implement ControllerProtocol.introspect()")
        return report
    view = introspect()
    _audit_view(view, report, view.flavor)
    return report


def _audit_view(view: ControllerView, report: InvariantReport,
                label: str) -> None:
    _check_safety_and_waste(view, report, label)
    if view.budget is not None:
        # Wrapper conservation: grants banked by finished stages/epochs
        # plus the live budget equal the wrapper's own M.
        report.expect(
            view.budget.total == view.m, "conservation",
            f"{label}: live budget {view.budget.live_budget} + prior "
            f"grants {view.budget.prior_grants} = {view.budget.total} "
            f"!= M={view.m}",
            m=view.m, live=view.budget.live_budget,
            prior=view.budget.prior_grants)
    if view.boards is not None:
        _audit_boards(view, report, label)
    elif view.storage is not None:
        parked = (view.stores.total_parked_permits()
                  if view.stores is not None else 0)
        total = view.granted + view.storage + parked
        report.expect(
            total == view.m, "conservation",
            f"{label}: granted {view.granted} + storage {view.storage} "
            f"+ parked {parked} = {total} != M={view.m}",
            granted=view.granted, storage=view.storage, parked=parked,
            m=view.m)
    if view.stores is not None:
        _check_store_packages(report, view.stores, view.params, label)
    for child_label, child in view.children:
        _audit_view(child.introspect(), report, f"{label}/{child_label}")


def _check_safety_and_waste(view: ControllerView, report: InvariantReport,
                            label: str) -> None:
    report.expect(view.granted <= view.m, "safety",
                  f"{label}: granted {view.granted} exceeds M={view.m}",
                  granted=view.granted, m=view.m)
    # The liveness bound triggers on rejection for (M,W) semantics and
    # on termination for the Observation 2.1 terminating variant.
    if view.waste_gate == "termination":
        triggered = view.terminated
    else:
        triggered = view.rejected > 0
    if triggered:
        report.expect(view.granted >= view.m - view.w, "waste",
                      f"{label}: only {view.granted} grants "
                      f"({view.waste_gate} waste gate); bound requires "
                      f">= {view.m - view.w}",
                      granted=view.granted, rejected=view.rejected,
                      m=view.m, w=view.w)
    else:
        report.count("waste")


def _check_store_packages(report: InvariantReport, stores: StoreMapLike,
                          params: Any, label: str) -> None:
    """Parked mobile packages have the Section 3.1 shape."""
    for node, store in stores.items():
        for package in store.mobile:
            expected = params.mobile_size(package.level)
            report.expect(
                package.size == expected, "packages",
                f"{label}: level-{package.level} package holds "
                f"{package.size} permits, expected {expected}",
                node=getattr(node, "node_id", None), level=package.level)
        report.expect(store.static_permits >= 0, "packages",
                      f"{label}: negative static pool",
                      node=getattr(node, "node_id", None),
                      static=store.static_permits)


def _audit_boards(view: ControllerView, report: InvariantReport,
                  label: str) -> None:
    """The distributed-engine audits: conservation at quiescence, the
    locking discipline, orphaned state, package shapes."""
    quiescent = view.active_agents == 0
    if quiescent:
        # Conservation is a quiescent-state property: while agents are
        # mid-distribution their Bag carries permits that are neither
        # root storage nor parked.
        parked = view.boards.total_parked_permits()
        total = view.granted + view.storage + parked
        report.expect(total == view.m, "conservation",
                      f"{label}: granted {view.granted} + storage "
                      f"{view.storage} + parked {parked} = {total} "
                      f"!= M={view.m}",
                      granted=view.granted,
                      storage=view.storage, parked=parked, m=view.m)
    _check_lock_ordering(view, report, quiescent)
    # Package shape + orphan audit over every whiteboard.
    for node, board in view.boards.items():
        alive = node in view.tree
        report.expect(
            alive or board.is_empty, "locks",
            f"{label}: dead node {node.node_id} still holds state "
            "(orphaned store/lock/queue)",
            node=node.node_id)
        for package in board.store.mobile:
            expected = view.params.mobile_size(package.level)
            report.expect(
                package.size == expected, "packages",
                f"{label}: level-{package.level} package holds "
                f"{package.size} permits, expected {expected}",
                node=node.node_id, level=package.level)


def _check_lock_ordering(view: ControllerView, report: InvariantReport,
                         quiescent: bool) -> None:
    """Section 4.3.1 locking discipline over the whiteboards."""
    for node, board in view.boards.items():
        holder = board.locked_by
        if holder is not None:
            report.expect(
                node in holder.path, "locks",
                f"locked node {node.node_id} not on holder's path "
                f"(agent {holder.agent_id})",
                node=node.node_id, agent=holder.agent_id)
            report.expect(
                holder.state.value != "done", "locks",
                f"finished agent {holder.agent_id} still holds the lock "
                f"of node {node.node_id}",
                node=node.node_id, agent=holder.agent_id)
        report.expect(
            holder is not None or not board.queue, "locks",
            f"unlocked node {node.node_id} has {len(board.queue)} waiters",
            node=node.node_id)
        for waiter in board.queue:
            report.expect(
                waiter.state.value == "waiting", "locks",
                f"queued agent {waiter.agent_id} at node {node.node_id} "
                f"is {waiter.state.value}, not waiting",
                node=node.node_id, agent=waiter.agent_id)
        if quiescent:
            report.expect(
                holder is None and not board.queue, "locks",
                f"quiescent engine: node {node.node_id} still locked "
                "or queued",
                node=node.node_id)


# ----------------------------------------------------------------------
# Application audits (protocol-based dispatch, like the controllers).
# ----------------------------------------------------------------------
def audit_app(app: object, report: Optional[InvariantReport] = None
              ) -> InvariantReport:
    """Audit a Section 5 application through its ``app_view()``.

    The app declares its auditable state as a
    :class:`repro.protocol.AppView`; the auditor checks what the
    declaration contains —

    * the Theorem 5.1 **estimate sandwich** when ``estimate``/``beta``
      are present: ``max(estimate/n, n/estimate) <= beta``;
    * Theorem 5.2 **id uniqueness and range** when ``ids`` is present:
      all distinct, all within ``[1, 4n]``;
    * **permit conservation across rollover**: grants banked by closed
      iterations plus the live controller's tally equal the app's own
      granted count — teardown/rebuild loses no grant and invents
      none;

    and then audits the live iteration's controller recursively via
    :func:`audit_controller` (safety, waste, conservation, package
    shapes, lock discipline — whatever the engine flavour declares).
    """
    report = report if report is not None else InvariantReport()
    app_view = getattr(app, "app_view", None)
    if app_view is None:
        report.fail(
            "dispatch",
            f"app type {type(app).__name__} does not implement "
            "AppProtocol.app_view()")
        return report
    view = app_view()
    _audit_app_view(view, report)
    return report


def _audit_app_view(view: AppView, report: InvariantReport) -> None:
    label = f"app:{view.name}"
    if view.estimate is not None and view.beta is not None:
        n = view.size
        estimate = view.estimate
        if n > 0 and estimate > 0:
            ratio = max(estimate / n, n / estimate)
            report.expect(
                ratio <= view.beta + 1e-9, "estimate",
                f"{label}: estimate {estimate} vs n={n} is a factor "
                f"{ratio:.3f} off, above beta={view.beta}",
                estimate=estimate, n=n, beta=view.beta)
        else:
            report.fail("estimate", f"{label}: degenerate size "
                        f"(n={n}, estimate={estimate})",
                        estimate=estimate, n=n)
    if view.ids is not None:
        n = view.size
        report.expect(
            len(set(view.ids)) == len(view.ids), "ids",
            f"{label}: duplicate ids among {len(view.ids)} nodes",
            count=len(view.ids))
        report.expect(
            len(view.ids) == n, "ids",
            f"{label}: {len(view.ids)} ids for {n} nodes",
            count=len(view.ids), n=n)
        bad = [i for i in view.ids if not 1 <= i <= 4 * n]
        report.expect(
            not bad, "ids",
            f"{label}: {len(bad)} id(s) outside [1, {4 * n}] "
            f"(first: {bad[:3]})", n=n)
    live = view.controller
    if live is not None:
        live_granted = getattr(live, "granted", 0)
        total = view.grants_banked + live_granted
        report.expect(
            total == view.granted_total, "conservation",
            f"{label}: banked grants {view.grants_banked} + live "
            f"{live_granted} = {total} != app tally "
            f"{view.granted_total} across {view.iterations} iterations",
            banked=view.grants_banked, live=live_granted,
            tally=view.granted_total, iterations=view.iterations)
        audit_controller(live, report)


def audit_gateway(gateway: Any,
                  report: Optional[InvariantReport] = None
                  ) -> InvariantReport:
    """Audit an ingestion gateway's conservation ledger, then recurse
    into its backend session's own audit.

    The gateway-level guarantees (duck-typed on
    :class:`repro.gateway.gateway.Gateway`: ``stats``,
    ``open_requests``, ``session``):

    * **admission conservation**: every submission is accounted for —
      ``submitted = accepted + shed_throttle + shed_breaker +
      backpressured``;
    * **settle exactly once**: every accepted envelope settles exactly
      once — ``accepted = settled + aborted + open`` and the
      ``double_settles`` counter (attempts to settle an
      already-settled ticket) is zero;
    * **verdict conservation**: the gateway's verdict tally matches
      its ledger — engine verdicts sum to ``settled``, ``shed`` to the
      two shed counters, ``backpressure`` to the queue refusals.

    Then ``gateway.session.audit(report)`` folds in the whole stack
    below (session envelope conservation, controller safety / waste /
    conservation / package shape / lock discipline, app rollover
    conservation — whatever the backend declares).
    """
    report = report if report is not None else InvariantReport()
    stats = gateway.stats
    label = "gateway"
    admitted = (stats.accepted + stats.shed_throttle
                + stats.shed_breaker + stats.backpressured)
    report.expect(
        stats.submitted == admitted, f"{label}:admission",
        f"submitted {stats.submitted} != accepted {stats.accepted} + "
        f"shed_throttle {stats.shed_throttle} + shed_breaker "
        f"{stats.shed_breaker} + backpressured {stats.backpressured}",
        submitted=stats.submitted, accepted=stats.accepted,
        shed_throttle=stats.shed_throttle,
        shed_breaker=stats.shed_breaker,
        backpressured=stats.backpressured)
    open_now = gateway.open_requests
    settled_total = stats.settled + stats.aborted + open_now
    report.expect(
        stats.accepted == settled_total, f"{label}:settle-once",
        f"accepted {stats.accepted} != settled {stats.settled} + "
        f"aborted {stats.aborted} + open {open_now}",
        accepted=stats.accepted, settled=stats.settled,
        aborted=stats.aborted, open=open_now)
    report.expect(
        stats.double_settles == 0, f"{label}:settle-once",
        f"{stats.double_settles} double-settle attempts recorded",
        double_settles=stats.double_settles)
    verdicts = stats.verdicts
    engine_verdicts = sum(
        count for verdict, count in verdicts.items()
        if verdict not in ("shed", "backpressure"))
    report.expect(
        engine_verdicts == stats.settled, f"{label}:verdicts",
        f"engine verdict tally {engine_verdicts} != settled "
        f"{stats.settled}", verdicts=dict(verdicts),
        settled=stats.settled)
    report.expect(
        verdicts.get("shed", 0) == stats.shed_throttle + stats.shed_breaker,
        f"{label}:verdicts",
        f"shed verdicts {verdicts.get('shed', 0)} != throttle "
        f"{stats.shed_throttle} + breaker {stats.shed_breaker}",
        verdicts=dict(verdicts))
    report.expect(
        verdicts.get("backpressure", 0) == stats.backpressured,
        f"{label}:verdicts",
        f"backpressure verdicts {verdicts.get('backpressure', 0)} != "
        f"refusals {stats.backpressured}", verdicts=dict(verdicts))
    gateway.session.audit(report)
    return report


def audit_fleet(fleet: Any, report: Optional[InvariantReport] = None
                ) -> InvariantReport:
    """Audit a sharded fleet: global contract, ledger, router, shards.

    Duck-typed on :class:`repro.fleet.router.FleetRouter` (``config``,
    ``shards``, ``ledger``, ``placements``, ``ring_place``,
    ``verdicts``).  Fleet-level guarantees:

    * **fleet safety**: Σ granted across shards (banked + live) never
      exceeds ``m_total``;
    * **carve conservation**: per-shard allocations sum to exactly
      ``m_total`` and carved waste allowances stay within ``w_total``
      (budget is carved, never minted);
    * **ledger conservation**: every borrowed permit is debited exactly
      once — each shard's recorded ``inbound``/``outbound`` match the
      ledger column sums, entries are well-formed (positive, between
      distinct existing shards, serials dense), and each shard's
      :class:`~repro.protocol.BudgetSplit` balances its entitlement:
      ``banked grants + live budget + reserve ==
      allocation + inbound - outbound``;
    * **router determinism**: every recorded placement equals the ring
      answer recomputed now (same origin → same shard under a fixed
      ring), and every live tree node is owned by exactly its shard;
    * **fleet waste**: once any client-visible reject happened, at
      least ``m_total - w_total`` permits were granted globally (the
      reject wave may only start when the global budget is spent).

    Then every live shard engine is audited recursively via
    :func:`audit_controller` (safety/waste/conservation/package shape
    per shard).
    """
    report = report if report is not None else InvariantReport()
    config = fleet.config
    shards = list(fleet.shards)
    label = "fleet"

    granted_total = sum(shard.granted for shard in shards)
    report.expect(
        granted_total <= config.m_total, f"{label}:safety",
        f"granted {granted_total} exceeds M_total {config.m_total}",
        granted=granted_total, m_total=config.m_total)

    allocations = sum(shard.allocation for shard in shards)
    report.expect(
        allocations == config.m_total, f"{label}:carve",
        f"shard allocations sum to {allocations}, not M_total "
        f"{config.m_total}",
        allocations=[shard.allocation for shard in shards],
        m_total=config.m_total)
    waste_carved = sum(shard.waste for shard in shards)
    report.expect(
        waste_carved <= config.w_total, f"{label}:carve",
        f"carved waste {waste_carved} exceeds W_total {config.w_total}",
        waste=[shard.waste for shard in shards], w_total=config.w_total)

    # Transfer-ledger integrity and double-entry conservation.
    names = {shard.name for shard in shards}
    entries = fleet.ledger.entries
    for position, entry in enumerate(entries):
        report.expect(
            entry.serial == position and entry.permits > 0
            and entry.donor != entry.receiver
            and entry.donor in names and entry.receiver in names,
            f"{label}:ledger",
            f"malformed transfer {entry!r} at position {position}",
            entry=entry.snapshot())
    for shard in shards:
        ledger_in = fleet.ledger.inbound(shard.name)
        ledger_out = fleet.ledger.outbound(shard.name)
        report.expect(
            shard.inbound == ledger_in and shard.outbound == ledger_out,
            f"{label}:ledger",
            f"shard {shard.name!r} books (in {shard.inbound}, out "
            f"{shard.outbound}) disagree with ledger (in {ledger_in}, "
            f"out {ledger_out})",
            shard=shard.name, inbound=shard.inbound,
            outbound=shard.outbound, ledger_inbound=ledger_in,
            ledger_outbound=ledger_out)
        split = shard.budget
        report.expect(
            split.total == shard.entitlement,
            f"{label}:conservation",
            f"shard {shard.name!r}: banked grants {split.prior_grants} "
            f"+ live budget {split.live_budget} != entitlement "
            f"{shard.entitlement} (allocation {shard.allocation} + "
            f"inbound {shard.inbound} - outbound {shard.outbound})",
            shard=shard.name, prior_grants=split.prior_grants,
            live_budget=split.live_budget,
            entitlement=shard.entitlement)

    # Router determinism: recorded placements replay identically, and
    # node ownership matches the trees.
    for origin, index in fleet.placements.items():
        report.expect(
            fleet.ring_place(origin) == index, f"{label}:routing",
            f"origin {origin!r} recorded on shard {index} but the ring "
            f"now answers {fleet.ring_place(origin)}",
            origin=origin, recorded=index)
    for shard in shards:
        for node in shard.tree.nodes():
            owner = fleet.owner_of(node)
            report.expect(
                owner == shard.index, f"{label}:routing",
                f"node {node.node_id} lives on shard {shard.index} but "
                f"is registered to {owner}",
                node=node.node_id, shard=shard.index, owner=owner)

    rejected = fleet.verdicts.get("rejected", 0)
    if rejected:
        floor = config.m_total - config.w_total
        report.expect(
            granted_total >= floor, f"{label}:waste",
            f"reject wave with only {granted_total} granted; the "
            f"global contract requires >= {floor} "
            f"(M_total {config.m_total} - W_total {config.w_total})",
            granted=granted_total, floor=floor, rejected=rejected)
    else:
        report.count(f"{label}:waste")

    for shard in shards:
        if shard.session is not None:
            audit_controller(shard.session.controller, report)
    return report


# ----------------------------------------------------------------------
# Outcome tallying and the tally audit (engine-agnostic).
# ----------------------------------------------------------------------
def tally_outcomes(outcomes: Iterable[Any]) -> Dict[str, int]:
    """Count outcomes by status: the one shared tally shape.

    Works on any iterable of objects with a ``status`` enum (the
    :class:`repro.core.requests.Outcome` contract); keys are the status
    values — ``granted``/``rejected``/``cancelled``/``pending`` — so
    the result drops straight into bench JSON documents and differential
    comparisons.
    """
    tally = {"granted": 0, "rejected": 0, "cancelled": 0, "pending": 0}
    for outcome in outcomes:
        tally[outcome.status.value] += 1
    return tally


def audit_tallies(granted: int, rejected: int, m: int, w: int,
                  report: Optional[InvariantReport] = None
                  ) -> InvariantReport:
    """Safety + waste from outcome tallies alone (engine-agnostic)."""
    report = report if report is not None else InvariantReport()
    view = ControllerView(flavor="tallies", m=m, w=w,
                          granted=granted, rejected=rejected)
    _check_safety_and_waste(view, report, "tallies")
    return report


def audit_outcomes(outcomes: Iterable[Any], m: int, w: int,
                   report: Optional[InvariantReport] = None
                   ) -> InvariantReport:
    """Safety + waste straight from an outcome list: the
    :func:`tally_outcomes` / :func:`audit_tallies` composition."""
    tally = tally_outcomes(outcomes)
    return audit_tallies(tally["granted"], tally["rejected"], m, w,
                         report=report)


# ----------------------------------------------------------------------
# Streaming counter monotonicity.
# ----------------------------------------------------------------------
class CounterWatch:
    """Asserts a counter set only ever grows.

    Call :meth:`observe` after every request (scenario drivers hook it
    into ``on_step``); each observation compares the counter snapshot
    against the previous one component-wise.
    """

    def __init__(self, counters: Any,
                 report: Optional[InvariantReport] = None) -> None:
        self._counters = counters
        self.report = report if report is not None else InvariantReport()
        self._last = counters.snapshot()

    def observe(self, *_args: object) -> None:
        current = self._counters.snapshot()
        for name, value in current.items():
            previous = self._last.get(name, 0)
            self.report.expect(
                value >= previous, "monotonicity",
                f"counter {name} decreased from {previous} to {value}",
                counter=name, before=previous, after=value)
        self._last = current
