"""Bound-fitting helpers for the complexity experiments.

The theorems give asymptotic bounds; the benches check the *shape* of the
measured curves by computing measured/bound ratios across a parameter
sweep (a healthy reproduction shows a ratio that is flat or shrinking)
and log-log slopes (which expose accidental polynomial blow-ups).
"""

import math
from typing import Iterable, List, Sequence, Tuple

from repro.errors import ConfigError


def bound_ratio(measured: Sequence[float], bound: Sequence[float]) -> List[float]:
    """Element-wise measured/bound ratios; bound entries must be positive."""
    if len(measured) != len(bound):
        raise ConfigError("measured and bound series differ in length")
    return [m / b for m, b in zip(measured, bound)]


def log_log_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    For a measured cost ``y ~ x^a polylog(x)``, the slope approaches ``a``
    from above; the benches assert it stays near 1 for the near-linear
    bounds of Observation 3.4 and Theorem 3.5.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ConfigError("need at least two points with matching lengths")
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    if den == 0:
        raise ConfigError("x values are all equal")
    return num / den


def amortized_series(costs: Iterable[float]) -> List[float]:
    """Running amortized cost: prefix_sum(costs)[i] / (i+1).

    Used for the per-topological-change amortized message bounds of the
    Section 5 applications.
    """
    result: List[float] = []
    total = 0.0
    for i, cost in enumerate(costs):
        total += cost
        result.append(total / (i + 1))
    return result


def theorem_3_5_bound(n0: int, sizes_at_changes: Sequence[int],
                      m: int, w: int) -> float:
    """The RHS of Theorem 3.5 part 1 (without its hidden constant).

    ``O(n0 log^2 n0 * log(M/(W+1)) + sum_j log^2 n_j * log(M/(W+1)))``.
    """
    log_factor = max(math.log2(max(m, 2) / (w + 1)), 1.0)
    base = n0 * max(math.log2(max(n0, 2)), 1.0) ** 2
    churn = sum(max(math.log2(max(nj, 2)), 1.0) ** 2 for nj in sizes_at_changes)
    return (base + churn) * log_factor


def observation_3_4_bound(u: int, m: int, w: int) -> float:
    """The RHS of Observation 3.4: ``O(U log^2 U log(M/(W+1)))``."""
    log_factor = max(math.log2(max(m, 2) / (w + 1)), 1.0)
    return u * max(math.log2(max(u, 2)), 1.0) ** 2 * log_factor


def pairwise(xs: Sequence[float]) -> List[Tuple[float, float]]:
    """Adjacent pairs of a sequence (helper for monotonicity checks)."""
    return list(zip(xs, xs[1:]))
