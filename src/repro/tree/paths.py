"""Ancestor-path helpers.

The controller constantly reasons about ancestors at exact distances
(filler windows, the ``u_k`` targets of ``Proc``, domain membership).
These helpers centralize that arithmetic.  All of them walk parent
pointers, costing O(distance) *local* work — in the centralized setting
this work is free (only package moves are charged), and in the
distributed setting the walking is done by agents that are charged per
hop by the message counters, never through these helpers.
"""

from typing import Iterator, List, Optional

from repro.errors import TopologyError

from repro.tree.node import TreeNode


def ancestors(node: TreeNode) -> Iterator[TreeNode]:
    """Yield ``node`` and then each proper ancestor up to the root.

    The paper's ancestry relation is reflexive ("a node is its own
    ancestor", Section 2.1.2), hence the inclusive start.
    """
    current: Optional[TreeNode] = node
    while current is not None:
        yield current
        current = current.parent


def depth(node: TreeNode) -> int:
    """Hop distance from ``node`` to the root."""
    hops = 0
    current = node
    while current.parent is not None:
        current = current.parent
        hops += 1
    return hops


def ancestor_at(node: TreeNode, hops: int) -> TreeNode:
    """The ancestor exactly ``hops`` edges above ``node``.

    Raises :class:`~repro.errors.TopologyError` when the root is
    closer than ``hops``.
    """
    current = node
    for _ in range(hops):
        if current.parent is None:
            raise TopologyError(f"{node} has no ancestor {hops} hops up")
        current = current.parent
    return current


def distance_to_ancestor(node: TreeNode, ancestor: TreeNode) -> int:
    """Hops from ``node`` up to ``ancestor``.

    Raises ``ValueError`` if ``ancestor`` is not actually an ancestor.
    """
    hops = 0
    current: Optional[TreeNode] = node
    while current is not None:
        if current is ancestor:
            return hops
        current = current.parent
        hops += 1
    raise TopologyError(f"{ancestor} is not an ancestor of {node}")


def is_ancestor(ancestor: TreeNode, node: TreeNode) -> bool:
    """True iff ``ancestor`` lies on the path from ``node`` to the root."""
    current: Optional[TreeNode] = node
    while current is not None:
        if current is ancestor:
            return True
        current = current.parent
    return False


def path_between(node: TreeNode, ancestor: TreeNode) -> List[TreeNode]:
    """Nodes on the path from ``node`` up to ``ancestor`` (inclusive)."""
    path = []
    current: Optional[TreeNode] = node
    while current is not None:
        path.append(current)
        if current is ancestor:
            return path
        current = current.parent
    raise TopologyError(f"{ancestor} is not an ancestor of {node}")
