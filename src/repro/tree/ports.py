"""Port-number assignment strategies.

Section 2.1.2: "we assume the relatively wasteful model in which the port
numbers are assigned by an adversary", encoded on O(log N) bits.  The
adversarial assigner therefore hands out scattered, non-consecutive
numbers (but keeps them within a polynomial range so the O(log N)-bit
assumption holds).  The sequential assigner exists for readable debugging
output and for the designer-port memory variant discussed in 4.4.2.

Both assigners treat the node's live port table as the source of truth,
so numbers stay locally distinct through any sequence of edge rewirings.
"""

import random
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:
    from repro.tree.node import TreeNode


class PortAssigner(Protocol):
    """Anything that can pick a fresh, locally distinct port for a node."""

    def next_port(self, node: "TreeNode") -> int: ...


class SequentialPortAssigner:
    """Ports numbered 0, 1, 2, ... per node (the designer-port model)."""

    def next_port(self, node: "TreeNode") -> int:
        used = set(node.ports_in_use())
        if node.port_to_parent is not None:
            used.add(node.port_to_parent)
        candidate = 0
        while candidate in used:
            candidate += 1
        return candidate


class AdversarialPortAssigner:
    """Ports drawn pseudo-randomly from a polynomial-size space.

    The draw is deterministic in the seed, and collisions at a node are
    re-drawn, so ports are always locally distinct as the model requires.
    """

    def __init__(self, seed: int = 0, space: int = 1 << 30) -> None:
        self._rng = random.Random(seed)
        self._space = space

    def next_port(self, node: "TreeNode") -> int:
        used = set(node.ports_in_use())
        if node.port_to_parent is not None:
            used.add(node.port_to_parent)
        while True:
            candidate = self._rng.randrange(self._space)
            if candidate not in used:
                return candidate
