"""Tree node representation.

A :class:`TreeNode` carries only topology (parent pointer, ordered child
list) plus the port-number bookkeeping of Section 2.1.2.  Protocol state
(packages, whiteboards, locks) lives in the controller layers, keyed by
node object, so several protocols can share one tree — the unknown-U
distributed controller of Appendix A runs *two* controllers on the same
tree simultaneously and relies on this separation.
"""

from typing import Dict, KeysView, List, Optional

from repro.errors import TopologyError


class TreeNode:
    """One vertex of the dynamic spanning tree.

    Attributes
    ----------
    node_id:
        A globally unique integer, assigned once and never reused.  It is
        *not* visible to the distributed algorithms (which are anonymous
        apart from port numbers); it exists for debugging, hashing and
        deterministic ordering in the simulator.
    parent:
        Parent node, ``None`` only for the root.
    children:
        Ordered list of children (order matters for DFS-based protocols
        such as the name-assignment traversals of Section 5.2).
    alive:
        Flips to ``False`` on deletion; layers use it to detect stale
        references (a deleted node may still appear in package *domains*,
        which is exactly what Case 5 of the domain rules prescribes).
    """

    __slots__ = (
        "node_id",
        "parent",
        "children",
        "alive",
        "port_to_parent",
        "_ports",
        "_anc_jumps",
        "_anc_epoch",
        "_store_owner",
        "_store",
    )

    def __init__(self, node_id: int,
                 parent: Optional["TreeNode"] = None) -> None:
        self.node_id = node_id
        self.parent = parent
        self.children: List["TreeNode"] = []
        self.alive = True
        # Port bookkeeping: every incident tree edge has a port number at
        # each endpoint; each node knows the port leading to its parent.
        self.port_to_parent: Optional[int] = None
        self._ports: Dict[int, "TreeNode"] = {}
        # Skip-pointer ancestry cache, owned by DynamicTree (see
        # ``DynamicTree.ancestor_at``): the jump table (``_anc_jumps[i]``
        # is the ancestor ``2^i`` hops up; depth is derived by climbing
        # the maximal jumps) plus the tree epoch it was built under —
        # the cache is fresh iff the epochs match (-1 = never built /
        # explicitly invalidated).  Simulation-local bookkeeping: the
        # distributed protocols never read it, so the memory bounds of
        # Section 4.4 are unaffected.
        self._anc_jumps: List["TreeNode"] = []
        self._anc_epoch = -1
        # Store fast-path slot (see ``repro.core.packages.StoreMap``):
        # one controller at a time may pin its per-node store here so
        # hot loops replace dict probes (which pay a Python-level
        # ``__hash__`` call per hop) with two slot loads.  Identity-
        # checked against the owner, so stale slots from detached
        # controllers are inert.
        self._store_owner: Optional[object] = None
        self._store: Optional[object] = None

    # ------------------------------------------------------------------
    # Port management (Section 2.1.2: adversarially assigned, distinct).
    # ------------------------------------------------------------------
    def attach_port(self, port: int, neighbor: "TreeNode") -> None:
        """Bind ``port`` to ``neighbor``; ports must be locally distinct."""
        if port in self._ports:
            raise TopologyError(
                f"port {port} already in use at node {self.node_id}")
        self._ports[port] = neighbor

    def detach_port_to(self, neighbor: "TreeNode") -> None:
        """Remove whichever port points at ``neighbor`` (if any)."""
        for port, other in list(self._ports.items()):
            if other is neighbor:
                del self._ports[port]
                return

    def port_of(self, neighbor: "TreeNode") -> Optional[int]:
        """Port number leading to ``neighbor``, or ``None``."""
        for port, other in self._ports.items():
            if other is neighbor:
                return port
        return None

    def neighbor_on(self, port: int) -> Optional["TreeNode"]:
        """Neighbor reached through ``port``, or ``None``."""
        return self._ports.get(port)

    def ports_in_use(self) -> KeysView[int]:
        """All port numbers currently bound at this node."""
        return self._ports.keys()

    # ------------------------------------------------------------------
    # Convenience topology queries.
    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def child_degree(self) -> int:
        """Number of children (``deg(v)`` in Claim 4.8's memory bound)."""
        return len(self.children)

    def __repr__(self) -> str:
        status = "" if self.alive else ",dead"
        return f"<Node {self.node_id}{status}>"

    def __hash__(self) -> int:
        return self.node_id

    def __eq__(self, other: object) -> bool:
        return self is other
