"""The dynamic rooted spanning tree and its mutation events.

This module implements the dynamic model of Section 2.1.2: a rooted tree
whose root is never deleted, undergoing additions and removals of both
leaves and internal nodes.  Every mutation notifies registered listeners
*after* the structural change, handing them exactly the information the
"graceful manner" contract of Section 4.2 promises (which node vanished,
who its parent was, which children were re-attached), so that controller
layers can relocate packages, whiteboard data and queued agents.

Non-tree edges (allowed by the paper but irrelevant to the controller,
whose messages travel only on tree edges) are deliberately not modelled;
Section 2.1.2 classifies their insertion/removal as non-topological
events, which our request layer supports directly.

Skip-pointer ancestry
---------------------
The tree maintains a level-ancestor structure (binary jump pointers:
node ``v`` caches its depth and the ancestors ``2^i`` hops up) so
:meth:`DynamicTree.depth` and :meth:`DynamicTree.ancestor_at` run in
O(log depth) instead of O(depth) parent-pointer walks.  The structure
is *simulation-local* bookkeeping: it models no messages and charges no
counters, exactly like the naive walks it replaces (the centralized
cost model charges package moves only, and the distributed engine's
agents still pay one message per physical hop).

Maintenance under churn is lazy with subtree-local invalidation:

* ``add_leaf`` / ``remove_leaf`` change no existing depth — no
  invalidation; the new leaf's table is built on first query in
  O(log depth);
* ``add_internal`` / ``remove_internal`` shift a whole subtree's depth
  by one — the moved subtree is flag-marked stale (O(subtree) flag
  writes, no table work), and stale tables are rebuilt on demand, only
  for nodes actually reached by later queries.

The soundness invariant (checked by ``tests/tree/test_skip_ancestry``):
a fresh cache is a correct cache, because any splice on a node's root
path marks exactly the subtree below the spliced edge — which contains
the node — stale; by the same argument every entry of a fresh table
(all of them ancestors) is fresh too, so jump decompositions never read
a stale table.

The structure pays off in growth/query-heavy regimes (leaf churn and
plain events never invalidate anything); under splice-heavy churn the
invalidation/repair traffic can exceed what the naive walks cost, which
is why ``skip_ancestry`` is a per-tree switch and the ``repro.bench``
ancestry scenario measures both modes.
"""

from typing import Iterator, List, Optional, Set

from repro.errors import TopologyError
from repro.tree import paths
from repro.tree.node import TreeNode
from repro.tree.ports import AdversarialPortAssigner, PortAssigner


class TreeListener:
    """Observer interface for topology mutations.

    Subclasses override the hooks they care about.  Hooks run synchronously
    inside the mutation, after the structure is updated, in registration
    order.
    """

    def on_add_leaf(self, node: TreeNode) -> None:
        """``node`` was just attached as a leaf below ``node.parent``."""

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        """``node`` was spliced into the former edge ``(parent, child)``."""

    def on_remove_leaf(self, node: TreeNode, parent: TreeNode) -> None:
        """Leaf ``node`` (former child of ``parent``) was deleted."""

    def on_remove_internal(self, node: TreeNode, parent: TreeNode,
                           children: List[TreeNode]) -> None:
        """Internal ``node`` was deleted; ``children`` moved to ``parent``."""


class DynamicTree:
    """A mutable rooted tree with listener notifications and accounting.

    Attributes
    ----------
    root:
        The never-deleted root node.
    total_ever:
        Number of nodes that ever existed (deleted ones included) — the
        quantity the paper's parameter ``U`` upper-bounds.
    topology_changes:
        Count of mutations performed (the ``j`` index of Theorem 3.5).
    size_history:
        ``n_j`` — the number of nodes at the time of the j'th change,
        recorded *before* applying the change; used by the complexity
        benches to evaluate the ``sum_j log^2 n_j`` bound.
    """

    def __init__(self, port_assigner: Optional[PortAssigner] = None,
                 skip_ancestry: bool = True) -> None:
        self._port_assigner = port_assigner or AdversarialPortAssigner(seed=0)
        self._next_id = 0
        self.skip_ancestry = skip_ancestry
        # Arbitration for the per-node store slots (see StoreMap): at
        # most one controller pins stores into TreeNode slots at a time;
        # later controllers on the same tree fall back to dict lookups.
        self.store_slot_owner: Optional[object] = None
        # Ancestry cache state: ``_anc_epoch`` is bumped to invalidate
        # every table at once (large-subtree splices); ``anc_generation``
        # counts every splice, so depth caches layered on top (e.g. the
        # controller's parked-host depths) know when to refresh.
        self._anc_epoch = 0
        self.anc_generation = 0
        self.root = self._new_node(parent=None)
        self.root._anc_epoch = 0
        self._alive: Set[TreeNode] = {self.root}
        self.total_ever = 1
        self.topology_changes = 0
        self.size_history: List[int] = []
        self._listeners: List[TreeListener] = []

    # ------------------------------------------------------------------
    # Listener plumbing.
    # ------------------------------------------------------------------
    def add_listener(self, listener: TreeListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: TreeListener) -> None:
        """Unregister ``listener``; a no-op if it is not registered.

        Discard semantics make every layered ``detach()`` idempotent
        by construction — a second detach finds the listener gone and
        does nothing, instead of raising out of the listener list.
        """
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current number of (alive) nodes, the paper's ``n``."""
        return len(self._alive)

    def __contains__(self, node: TreeNode) -> bool:
        return node in self._alive

    def nodes(self) -> Iterator[TreeNode]:
        """Iterate over alive nodes in DFS (preorder) from the root."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            # Reversed so that iteration visits children left-to-right.
            stack.extend(reversed(node.children))

    def depth(self, node: TreeNode) -> int:
        """Hop distance from ``node`` to the root.

        O(log depth) amortized via the jump tables: climb the maximal
        jump of each landing node, summing powers of two (O(depth)
        parent walk when ``skip_ancestry`` is disabled).
        """
        if not self.skip_ancestry:
            return paths.depth(node)
        epoch = self._anc_epoch
        hops = 0
        current = node
        while True:
            jumps = (current._anc_jumps if current._anc_epoch == epoch
                     else self._anc_table(current))
            if not jumps:
                return hops
            hops += 1 << (len(jumps) - 1)
            current = jumps[-1]

    def ancestor_at(self, node: TreeNode, hops: int) -> TreeNode:
        """The ancestor exactly ``hops`` edges above ``node``.

        Semantics match :func:`repro.tree.paths.ancestor_at` (raises
        ``ValueError`` when the root is closer than ``hops``) but the
        query runs in O(log depth) amortized: binary decomposition of
        ``hops`` over the jump tables.  Every node the decomposition
        lands on is an ancestor of ``node``, whose table is fresh or
        rebuilt on demand by :meth:`_anc_table`.
        """
        if hops < 0:
            raise TopologyError(f"negative hop count {hops}")
        if not self.skip_ancestry:
            return paths.ancestor_at(node, hops)
        epoch = self._anc_epoch
        current = node
        remaining = hops
        while remaining:
            jumps = (current._anc_jumps if current._anc_epoch == epoch
                     else self._anc_table(current))
            if not jumps:
                raise TopologyError(f"{node} has no ancestor {hops} hops up")
            i = remaining.bit_length() - 1
            if i >= len(jumps):
                i = len(jumps) - 1
            current = jumps[i]
            remaining -= 1 << i
        return current

    def ancestor_distance(self, node: TreeNode,
                          ancestor: TreeNode) -> Optional[int]:
        """Hops from ``node`` up to ``ancestor``, or ``None``.

        ``None`` when ``ancestor`` does not lie on ``node``'s root path
        (the non-raising cousin of
        :func:`repro.tree.paths.distance_to_ancestor`).  O(log depth)
        amortized: a depth difference plus one ``ancestor_at`` check.
        """
        if not self.skip_ancestry:
            try:
                return paths.distance_to_ancestor(node, ancestor)
            except ValueError:
                return None
        dist = self.depth(node) - self.depth(ancestor)
        if dist < 0:
            return None
        return dist if self.ancestor_at(node, dist) is ancestor else None

    # ------------------------------------------------------------------
    # Mutations (Section 2.1.2).
    # ------------------------------------------------------------------
    def add_leaf(self, parent: TreeNode) -> TreeNode:
        """Attach a new degree-one node below ``parent``."""
        self._require_alive(parent, "add_leaf parent")
        self._record_change()
        node = self._new_node(parent=parent)
        parent.children.append(node)
        self._wire_edge(parent, node)
        self._alive.add(node)
        self.total_ever += 1
        for listener in self._listeners:
            listener.on_add_leaf(node)
        return node

    def add_internal(self, parent: TreeNode, child: TreeNode) -> TreeNode:
        """Split tree edge ``(parent, child)`` with a new node.

        ``parent`` must currently be ``child``'s parent.  The new node
        takes ``child``'s position in ``parent.children`` so DFS order is
        preserved.
        """
        self._require_alive(parent, "add_internal parent")
        self._require_alive(child, "add_internal child")
        if child.parent is not parent:
            raise TopologyError(
                f"{parent} is not the parent of {child}; cannot split edge"
            )
        self._record_change()
        # Every node of ``child``'s subtree moves one hop further from
        # the root: lazily invalidate its ancestry caches.
        self._anc_mark_stale(child)
        node = self._new_node(parent=parent)
        index = parent.children.index(child)
        parent.children[index] = node
        node.children.append(child)
        child.parent = node
        # Re-wire ports: parent's old port to child now reaches node;
        # node gets fresh ports on both sides; child's parent port is new.
        parent.detach_port_to(child)
        child.detach_port_to(parent)
        self._wire_edge(parent, node)
        self._wire_edge(node, child)
        self._alive.add(node)
        self.total_ever += 1
        for listener in self._listeners:
            listener.on_add_internal(node, parent, child)
        return node

    def remove_leaf(self, node: TreeNode) -> None:
        """Delete a childless non-root node."""
        self._require_alive(node, "remove_leaf target")
        if node.is_root:
            raise TopologyError("the root is never deleted")
        if node.children:
            raise TopologyError(f"{node} has children; use remove_internal")
        self._record_change()
        parent = node.parent
        parent.children.remove(node)
        parent.detach_port_to(node)
        node.alive = False
        node._anc_jumps = []
        node._anc_epoch = -1
        self._alive.discard(node)
        for listener in self._listeners:
            listener.on_remove_leaf(node, parent)

    def remove_internal(self, node: TreeNode) -> None:
        """Delete a non-root node with children; children move to parent.

        The children are spliced into the parent's child list at the
        deleted node's position, preserving DFS order.
        """
        self._require_alive(node, "remove_internal target")
        if node.is_root:
            raise TopologyError("the root is never deleted")
        if not node.children:
            raise TopologyError(f"{node} is a leaf; use remove_leaf")
        self._record_change()
        parent = node.parent
        children = list(node.children)
        # Every node of every child subtree moves one hop closer to the
        # root: lazily invalidate their ancestry caches.
        for child in children:
            self._anc_mark_stale(child)
        index = parent.children.index(node)
        parent.children[index:index + 1] = children
        parent.detach_port_to(node)
        for child in children:
            child.parent = parent
            child.detach_port_to(node)
            self._wire_edge(parent, child)
        node.children.clear()
        node.alive = False
        node._anc_jumps = []
        node._anc_epoch = -1
        self._alive.discard(node)
        for listener in self._listeners:
            listener.on_remove_internal(node, parent, children)

    # ------------------------------------------------------------------
    # Validation (tests call this after random mutation storms).
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural integrity; raises ``TopologyError`` on damage."""
        seen: Set[TreeNode] = set()
        stack = [(self.root, 0)]
        while stack:
            node, hops = stack.pop()
            if node in seen:
                raise TopologyError(f"cycle through {node}")
            seen.add(node)
            if not node.alive:
                raise TopologyError(f"dead node {node} still reachable")
            if node._anc_epoch == self._anc_epoch:
                # A fresh ancestry cache must be exact (the lazy scheme's
                # soundness invariant): the table's derived depth matches
                # the DFS depth and jump[0] is the parent pointer.
                if hops == 0:
                    if node._anc_jumps:
                        raise TopologyError(
                            f"root-depth node {node} has a jump table")
                else:
                    if (not node._anc_jumps
                            or node._anc_jumps[0] is not node.parent):
                        raise TopologyError(
                            f"ancestry jump[0] of {node} is not its parent")
                    cached = self.depth(node)
                    if cached != hops:
                        raise TopologyError(
                            f"stale-but-fresh ancestry at {node}: cached "
                            f"depth {cached}, actual {hops}")
            for child in node.children:
                if child.parent is not node:
                    raise TopologyError(
                        f"{child}.parent is {child.parent}, expected {node}"
                    )
                stack.append((child, hops + 1))
        if seen != self._alive:
            raise TopologyError(
                f"reachable set ({len(seen)}) != alive set ({len(self._alive)})"
            )

    # ------------------------------------------------------------------
    # Skip-pointer ancestry internals.
    # ------------------------------------------------------------------
    #: Budget for per-splice subtree invalidation walks; subtrees larger
    #: than this are invalidated in O(1) by bumping the global epoch.
    _ANC_MARK_BUDGET = 64

    def _anc_mark_stale(self, top: TreeNode) -> None:
        """Invalidate ancestry caches for ``top``'s subtree (a splice
        shifted its depths).

        Small subtrees are walked and flag-marked individually; past
        :data:`_ANC_MARK_BUDGET` nodes the walk stops and the global
        epoch is bumped instead, invalidating every table at O(1) cost
        (the already-marked prefix is harmless).  Tables are rebuilt
        lazily by queries either way, so a splice never pays for
        descendants that are never queried again.
        """
        self.anc_generation += 1
        if not self.skip_ancestry:
            # Tables are not in use, but they may hold caches from an
            # earlier skip-enabled phase; a flipped-off tree must not
            # resurrect them stale if the flag is flipped back on.
            self._anc_epoch += 1
            return
        budget = self._ANC_MARK_BUDGET
        stack = [top]
        while stack:
            node = stack.pop()
            node._anc_epoch = -1
            node._anc_jumps = []
            budget -= 1
            if budget <= 0 and (stack or node.children):
                self._anc_epoch += 1
                return
            stack.extend(node.children)

    def _anc_table(self, node: TreeNode) -> List[TreeNode]:
        """Build (memoized) the jump table of ``node``.

        ``jumps[0]`` is the parent and ``jumps[i+1] = jumps[i]``'s
        ``2^i``-ancestor, read from ``jumps[i]``'s own table — so
        building one table may demand tables of ancestors, resolved
        iteratively with an explicit worklist (deep stale chains exceed
        the interpreter recursion limit).  Every table is built at most
        once per invalidation of its node, and only for nodes actually
        reached by queries.
        """
        epoch = self._anc_epoch
        pending = [node]
        while pending:
            entry = pending[-1]
            if entry._anc_epoch == epoch:
                pending.pop()
                continue
            parent = entry.parent
            if parent is None:
                entry._anc_jumps = []
                entry._anc_epoch = epoch
                pending.pop()
                continue
            jumps = [parent]
            blocked = None
            i = 0
            while True:
                hop = jumps[i]
                if hop._anc_epoch != epoch:
                    blocked = hop
                    break
                hop_jumps = hop._anc_jumps
                if i >= len(hop_jumps):
                    break
                jumps.append(hop_jumps[i])
                i += 1
            if blocked is not None:
                pending.append(blocked)
                continue
            entry._anc_jumps = jumps
            entry._anc_epoch = epoch
            pending.pop()
        return node._anc_jumps

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _new_node(self, parent: Optional[TreeNode]) -> TreeNode:
        node = TreeNode(self._next_id, parent=parent)
        self._next_id += 1
        return node

    def _wire_edge(self, parent: TreeNode, child: TreeNode) -> None:
        parent_port = self._port_assigner.next_port(parent)
        parent.attach_port(parent_port, child)
        child_port = self._port_assigner.next_port(child)
        child.attach_port(child_port, parent)
        child.port_to_parent = child_port

    def _record_change(self) -> None:
        self.size_history.append(self.size)
        self.topology_changes += 1

    def _require_alive(self, node: TreeNode, role: str) -> None:
        if node not in self._alive:
            raise TopologyError(f"{role} {node} is not in the tree")
