"""The dynamic rooted spanning tree and its mutation events.

This module implements the dynamic model of Section 2.1.2: a rooted tree
whose root is never deleted, undergoing additions and removals of both
leaves and internal nodes.  Every mutation notifies registered listeners
*after* the structural change, handing them exactly the information the
"graceful manner" contract of Section 4.2 promises (which node vanished,
who its parent was, which children were re-attached), so that controller
layers can relocate packages, whiteboard data and queued agents.

Non-tree edges (allowed by the paper but irrelevant to the controller,
whose messages travel only on tree edges) are deliberately not modelled;
Section 2.1.2 classifies their insertion/removal as non-topological
events, which our request layer supports directly.
"""

from typing import Callable, Iterator, List, Optional, Set

from repro.errors import TopologyError
from repro.tree.node import TreeNode
from repro.tree.ports import AdversarialPortAssigner


class TreeListener:
    """Observer interface for topology mutations.

    Subclasses override the hooks they care about.  Hooks run synchronously
    inside the mutation, after the structure is updated, in registration
    order.
    """

    def on_add_leaf(self, node: TreeNode) -> None:
        """``node`` was just attached as a leaf below ``node.parent``."""

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        """``node`` was spliced into the former edge ``(parent, child)``."""

    def on_remove_leaf(self, node: TreeNode, parent: TreeNode) -> None:
        """Leaf ``node`` (former child of ``parent``) was deleted."""

    def on_remove_internal(self, node: TreeNode, parent: TreeNode,
                           children: List[TreeNode]) -> None:
        """Internal ``node`` was deleted; ``children`` moved to ``parent``."""


class DynamicTree:
    """A mutable rooted tree with listener notifications and accounting.

    Attributes
    ----------
    root:
        The never-deleted root node.
    total_ever:
        Number of nodes that ever existed (deleted ones included) — the
        quantity the paper's parameter ``U`` upper-bounds.
    topology_changes:
        Count of mutations performed (the ``j`` index of Theorem 3.5).
    size_history:
        ``n_j`` — the number of nodes at the time of the j'th change,
        recorded *before* applying the change; used by the complexity
        benches to evaluate the ``sum_j log^2 n_j`` bound.
    """

    def __init__(self, port_assigner=None):
        self._port_assigner = port_assigner or AdversarialPortAssigner(seed=0)
        self._next_id = 0
        self.root = self._new_node(parent=None)
        self._alive: Set[TreeNode] = {self.root}
        self.total_ever = 1
        self.topology_changes = 0
        self.size_history: List[int] = []
        self._listeners: List[TreeListener] = []

    # ------------------------------------------------------------------
    # Listener plumbing.
    # ------------------------------------------------------------------
    def add_listener(self, listener: TreeListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: TreeListener) -> None:
        self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current number of (alive) nodes, the paper's ``n``."""
        return len(self._alive)

    def __contains__(self, node: TreeNode) -> bool:
        return node in self._alive

    def nodes(self) -> Iterator[TreeNode]:
        """Iterate over alive nodes in DFS (preorder) from the root."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            # Reversed so that iteration visits children left-to-right.
            stack.extend(reversed(node.children))

    def depth(self, node: TreeNode) -> int:
        """Hop distance from ``node`` to the root."""
        hops = 0
        current = node
        while current.parent is not None:
            current = current.parent
            hops += 1
        return hops

    # ------------------------------------------------------------------
    # Mutations (Section 2.1.2).
    # ------------------------------------------------------------------
    def add_leaf(self, parent: TreeNode) -> TreeNode:
        """Attach a new degree-one node below ``parent``."""
        self._require_alive(parent, "add_leaf parent")
        self._record_change()
        node = self._new_node(parent=parent)
        parent.children.append(node)
        self._wire_edge(parent, node)
        self._alive.add(node)
        self.total_ever += 1
        for listener in self._listeners:
            listener.on_add_leaf(node)
        return node

    def add_internal(self, parent: TreeNode, child: TreeNode) -> TreeNode:
        """Split tree edge ``(parent, child)`` with a new node.

        ``parent`` must currently be ``child``'s parent.  The new node
        takes ``child``'s position in ``parent.children`` so DFS order is
        preserved.
        """
        self._require_alive(parent, "add_internal parent")
        self._require_alive(child, "add_internal child")
        if child.parent is not parent:
            raise TopologyError(
                f"{parent} is not the parent of {child}; cannot split edge"
            )
        self._record_change()
        node = self._new_node(parent=parent)
        index = parent.children.index(child)
        parent.children[index] = node
        node.children.append(child)
        child.parent = node
        # Re-wire ports: parent's old port to child now reaches node;
        # node gets fresh ports on both sides; child's parent port is new.
        parent.detach_port_to(child)
        child.detach_port_to(parent)
        self._wire_edge(parent, node)
        self._wire_edge(node, child)
        self._alive.add(node)
        self.total_ever += 1
        for listener in self._listeners:
            listener.on_add_internal(node, parent, child)
        return node

    def remove_leaf(self, node: TreeNode) -> None:
        """Delete a childless non-root node."""
        self._require_alive(node, "remove_leaf target")
        if node.is_root:
            raise TopologyError("the root is never deleted")
        if node.children:
            raise TopologyError(f"{node} has children; use remove_internal")
        self._record_change()
        parent = node.parent
        parent.children.remove(node)
        parent.detach_port_to(node)
        node.alive = False
        self._alive.discard(node)
        for listener in self._listeners:
            listener.on_remove_leaf(node, parent)

    def remove_internal(self, node: TreeNode) -> None:
        """Delete a non-root node with children; children move to parent.

        The children are spliced into the parent's child list at the
        deleted node's position, preserving DFS order.
        """
        self._require_alive(node, "remove_internal target")
        if node.is_root:
            raise TopologyError("the root is never deleted")
        if not node.children:
            raise TopologyError(f"{node} is a leaf; use remove_leaf")
        self._record_change()
        parent = node.parent
        children = list(node.children)
        index = parent.children.index(node)
        parent.children[index:index + 1] = children
        parent.detach_port_to(node)
        for child in children:
            child.parent = parent
            child.detach_port_to(node)
            self._wire_edge(parent, child)
        node.children.clear()
        node.alive = False
        self._alive.discard(node)
        for listener in self._listeners:
            listener.on_remove_internal(node, parent, children)

    # ------------------------------------------------------------------
    # Validation (tests call this after random mutation storms).
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural integrity; raises ``TopologyError`` on damage."""
        seen: Set[TreeNode] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node in seen:
                raise TopologyError(f"cycle through {node}")
            seen.add(node)
            if not node.alive:
                raise TopologyError(f"dead node {node} still reachable")
            for child in node.children:
                if child.parent is not node:
                    raise TopologyError(
                        f"{child}.parent is {child.parent}, expected {node}"
                    )
                stack.append(child)
        if seen != self._alive:
            raise TopologyError(
                f"reachable set ({len(seen)}) != alive set ({len(self._alive)})"
            )

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _new_node(self, parent: Optional[TreeNode]) -> TreeNode:
        node = TreeNode(self._next_id, parent=parent)
        self._next_id += 1
        return node

    def _wire_edge(self, parent: TreeNode, child: TreeNode) -> None:
        parent_port = self._port_assigner.next_port(parent)
        parent.attach_port(parent_port, child)
        child_port = self._port_assigner.next_port(child)
        child.attach_port(child_port, parent)
        child.port_to_parent = child_port

    def _record_change(self) -> None:
        self.size_history.append(self.size)
        self.topology_changes += 1

    def _require_alive(self, node: TreeNode, role: str) -> None:
        if node not in self._alive:
            raise TopologyError(f"{role} {node} is not in the tree")
