"""Dynamic rooted-tree substrate.

The controller operates on a network spanned by a rooted tree whose root
is never deleted (Section 2.1.2).  The tree supports the paper's four
topological changes:

* ``add_leaf`` — a new degree-one node attached below an existing node;
* ``remove_leaf`` — a non-root node without children is deleted;
* ``add_internal`` — a tree edge ``(v, w)`` is split by a new node;
* ``remove_internal`` — a non-root node with children is deleted and its
  children are re-attached to its parent.

Mutations notify registered :class:`TreeListener` observers so that the
controller layers (packages, domains, agents, applications) can implement
the paper's "graceful" hand-over contract (Section 4.2) without the tree
knowing anything about them.
"""

from repro.tree.node import TreeNode
from repro.tree.ports import AdversarialPortAssigner, SequentialPortAssigner
from repro.tree.dynamic_tree import DynamicTree, TreeListener
from repro.tree.paths import (
    ancestors,
    ancestor_at,
    depth,
    distance_to_ancestor,
    is_ancestor,
    path_between,
)

__all__ = [
    "TreeNode",
    "AdversarialPortAssigner",
    "SequentialPortAssigner",
    "DynamicTree",
    "TreeListener",
    "ancestors",
    "ancestor_at",
    "depth",
    "distance_to_ancestor",
    "is_ancestor",
    "path_between",
]
