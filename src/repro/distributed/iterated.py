"""Distributed halving iterations (Theorem 4.7).

The distributed equivalent of Observation 3.4: run terminating
``(M_i, M_i/2)``-stages; when stage i terminates, count the unused
permits L with a broadcast/upcast round (O(U) messages of O(log M)
bits), reset the data structure with another broadcast, and start stage
i+1 with ``M_{i+1} = L``.  After O(log(M/(W+1))) stages the final
``(L, W)``-stage runs with real rejects.  For W = 0 the final permits
are served by the trivial root-walk controller (2·depth messages per
request), as prescribed at the end of Section 4.4.1.

Stages are separated by quiescence: the terminating controller's
broadcast/upcast round (Observation 2.1) already guarantees that all
in-flight work of a stage completes before the next begins, so driving
the stage boundary from the harness is faithful to the protocol.
"""

from typing import Callable, Iterable, List, Optional

from repro.errors import ControllerError
from repro.metrics.counters import MessageCounters
from repro.protocol import ControllerView
from repro.sim.delays import DelayModel, UniformDelay
from repro.sim.fastsched import FastScheduler, warn_fast_path_fallback
from repro.sim.scheduler import Scheduler
from repro.tree.dynamic_tree import DynamicTree
from repro.core.requests import (
    Outcome,
    OutcomeStatus,
    Request,
    perform_event,
)
from repro.distributed.controller import DistributedController


class DistributedIteratedController:
    """Full distributed (M,W)-Controller via terminating stages.

    Use :meth:`process` to feed a batch of requests: it submits them to
    the current stage, runs the simulator to quiescence, rolls stages
    over while requests come back PENDING, and returns every request's
    final outcome (in completion order).
    """

    def __init__(self, tree: DynamicTree, m: int, w: int, u: int,
                 scheduler: Optional[Scheduler] = None,
                 delays: Optional[DelayModel] = None,
                 counters: Optional[MessageCounters] = None,
                 fast_path: bool = False) -> None:
        self.tree = tree
        self.m = m
        self.w = w
        self.u = u
        # Stage controllers share this scheduler, so making it a
        # FastScheduler here is all the stages need: they detect the
        # engine by type and switch to the allocation-free hop path.
        if scheduler is None:
            scheduler = FastScheduler() if fast_path else Scheduler()
        elif fast_path and not isinstance(scheduler, FastScheduler):
            warn_fast_path_fallback(
                "an externally-wired reference scheduler is attached")
        self.scheduler = scheduler
        self.delays = delays if delays is not None else UniformDelay(seed=0)
        self.counters = counters if counters is not None else MessageCounters()
        self.granted = 0
        self.rejected = 0
        self.stages_run = 0
        self.rejecting = False
        self._trivial_storage = 0
        self._trivial_active = False
        self._stage: Optional[DistributedController] = None
        self._spawn_stage(m)

    # ------------------------------------------------------------------
    def process(self, requests: Iterable[Request],
                callback: Optional[Callable[[Outcome], None]] = None
                ) -> List[Outcome]:
        """Serve a batch of requests to completion across stages."""
        batch = list(requests)
        resolved: List[Outcome] = []
        while batch:
            pending_next: List[Request] = []
            if self._trivial_active:
                for request in batch:
                    outcome = self._handle_trivial(request)
                    resolved.append(outcome)
                    if callback is not None:
                        callback(outcome)
                return resolved
            stage = self._stage
            outcomes: List[Outcome] = []
            for request in batch:
                stage.submit(request, callback=outcomes.append)
            stage.run()
            for outcome in outcomes:
                if outcome.status is OutcomeStatus.PENDING:
                    pending_next.append(outcome.request)
                else:
                    if outcome.status is OutcomeStatus.REJECTED:
                        self.rejected += 1
                        self.rejecting = True
                    resolved.append(outcome)
                    if callback is not None:
                        callback(outcome)
            batch = pending_next
            if batch:
                self._rollover()
        return resolved

    def handle(self, request: Request) -> Outcome:
        """Protocol form: one request served to completion."""
        return self.process([request])[0]

    def handle_batch(self, requests: Iterable[Request]) -> List[Outcome]:
        """Protocol alias for :meth:`process`."""
        return self.process(requests)

    def unused_permits(self) -> int:
        if self._trivial_active:
            return self._trivial_storage
        return self.m - self.granted - self._stage.granted

    def introspect(self) -> ControllerView:
        """The :class:`repro.protocol.ControllerProtocol` audit view.

        ``granted`` includes the live stage's grants (the wrapper banks
        them only at rollover), so safety/waste are checked against the
        true running total.
        """
        stage = self._stage
        children = (("stage", stage),) if stage is not None else ()
        live = stage.granted if stage is not None else 0
        return ControllerView(
            flavor="distributed-iterated", m=self.m, w=self.w,
            granted=self.granted + live, rejected=self.rejected,
            tree=self.tree, children=children,
        )

    # ------------------------------------------------------------------
    def _spawn_stage(self, budget: int) -> None:
        self.stages_run += 1
        effective_w = max(self.w, 1)
        halving = budget > 2 * (effective_w + 1) and budget // 2 > effective_w
        if halving:
            stage_w = budget // 2
            terminate = True
        else:
            stage_w = effective_w
            # The final stage rejects for real, unless W = 0 (then we
            # terminate once more and fall through to the trivial stage).
            terminate = self.w == 0
        self._halving_stage = halving
        self._stage = DistributedController(
            self.tree, m=budget, w=stage_w, u=self.u,
            scheduler=self.scheduler, delays=self.delays,
            counters=self.counters, terminate_on_exhaustion=terminate,
        )

    def _rollover(self) -> None:
        stage = self._stage
        if not stage.terminated:
            raise ControllerError("rollover without stage termination")
        self.granted += stage.granted
        leftover = self.m - self.granted
        stage.detach()
        # Count L (broadcast + upcast) and reset the data structure
        # (broadcast): 3(n-1) messages.
        self.counters.broadcast_messages += 3 * max(self.tree.size - 1, 0)
        if self._halving_stage:
            self._spawn_stage(leftover)
        elif self.w == 0:
            # (M,1) terminated; at most one permit remains: trivial stage.
            self._trivial_storage = leftover
            self._trivial_active = True
            self.stages_run += 1
        else:
            raise ControllerError("final rejecting stage cannot terminate")

    # ------------------------------------------------------------------
    def _handle_trivial(self, request: Request) -> Outcome:
        """The (L, 0) trivial stage: every request walks to the root."""
        node = request.node
        if node not in self.tree:
            return Outcome(OutcomeStatus.CANCELLED, request)
        if self.rejecting:
            self.rejected += 1
            return Outcome(OutcomeStatus.REJECTED, request)
        self.counters.agent_hops += 2 * self.tree.depth(node)
        if self._trivial_storage > 0:
            self._trivial_storage -= 1
            self.granted += 1
            new_node = perform_event(self.tree, request)
            return Outcome(OutcomeStatus.GRANTED, request, new_node=new_node)
        self.rejecting = True
        self.rejected += 1
        self.counters.reject_messages += self.tree.size
        return Outcome(OutcomeStatus.REJECTED, request)

    def detach(self) -> None:
        if self._stage is not None:
            self._stage.detach()
            self._stage = None
