"""Distributed unknown-U controller — Appendix A (Theorem 4.9).

When no bound U is known, the distributed controller runs in epochs:

* epoch i assumes ``U_i = 2 N_i`` and runs a terminating
  ``(M_i, W)``-controller for the actual requests;
* **in parallel**, a second terminating ``(U_i/2, U_i/4)``-controller
  counts topological changes only: a topological change happens only
  after receiving a permit from *both* controllers, and the counting
  controller's termination is the epoch-end signal (it fires after
  between U_i/4 and U_i/2 changes — the paper's relaxation of the
  exact-U_i/4 cut of the centralized version);
* at the epoch boundary, broadcast/upcast rounds count ``N_{i+1}`` and
  ``Y_i``, the data structure is reset, and epoch i+1 starts with
  ``M_{i+1} = M_i − Y_i``.

The two controllers ignore each other's locks (they run on disjoint
whiteboard state); both must grant before the requesting entity
performs the change, exactly as Appendix A prescribes.
"""

from typing import Callable, Iterable, List, Optional

from repro.errors import ControllerError
from repro.metrics.counters import MessageCounters
from repro.protocol import ControllerView
from repro.sim.delays import DelayModel, UniformDelay
from repro.sim.fastsched import FastScheduler, warn_fast_path_fallback
from repro.sim.scheduler import Scheduler
from repro.tree.dynamic_tree import DynamicTree
from repro.core.requests import (
    Outcome,
    OutcomeStatus,
    Request,
    RequestKind,
    perform_event,
)
from repro.distributed.controller import DistributedController


class DistributedAdaptiveController:
    """Distributed (M,W)-Controller requiring no a-priori U.

    Drive it with :meth:`process` batches, like
    :class:`~repro.distributed.iterated.DistributedIteratedController`.
    """

    def __init__(self, tree: DynamicTree, m: int, w: int,
                 scheduler: Optional[Scheduler] = None,
                 delays: Optional[DelayModel] = None,
                 counters: Optional[MessageCounters] = None,
                 fast_path: bool = False) -> None:
        if w < 1:
            raise ControllerError("the distributed adaptive wrapper "
                                  "needs W >= 1")
        self.tree = tree
        self.m = m
        self.w = w
        # Both per-epoch controllers share this scheduler; a
        # FastScheduler here puts every epoch on the fast hop path.
        if scheduler is None:
            scheduler = FastScheduler() if fast_path else Scheduler()
        elif fast_path and not isinstance(scheduler, FastScheduler):
            warn_fast_path_fallback(
                "an externally-wired reference scheduler is attached")
        self.scheduler = scheduler
        self.delays = delays if delays is not None else UniformDelay(seed=0)
        self.counters = counters if counters is not None else MessageCounters()
        self.granted = 0
        self.rejected = 0
        self.epochs_run = 0
        self.rejecting = False
        self._main: Optional[DistributedController] = None
        self._change_counter: Optional[DistributedController] = None
        self._start_epoch(m)

    # ------------------------------------------------------------------
    def process(self, requests: Iterable[Request],
                callback: Optional[Callable[[Outcome], None]] = None
                ) -> List[Outcome]:
        """Serve a batch of requests to completion across epochs."""
        resolved: List[Outcome] = []
        for request in requests:
            outcome = self._serve(request)
            resolved.append(outcome)
            if callback is not None:
                callback(outcome)
        return resolved

    def handle(self, request: Request) -> Outcome:
        """Protocol form: one request served to completion."""
        return self.process([request])[0]

    def handle_batch(self, requests: Iterable[Request]) -> List[Outcome]:
        """Protocol alias for :meth:`process`."""
        return self.process(requests)

    def unused_permits(self) -> int:
        return self.m - self.granted

    def introspect(self) -> ControllerView:
        """The :class:`repro.protocol.ControllerProtocol` audit view.

        Both per-epoch engines are exposed: the main controller serving
        the actual requests and the parallel change-counting controller
        of Appendix A (each conserves its own budget and obeys the
        locking discipline, so both are audited).
        """
        children = tuple(
            (label, controller)
            for label, controller in (("main", self._main),
                                      ("change_counter",
                                       self._change_counter))
            if controller is not None
        )
        return ControllerView(
            flavor="distributed-adaptive", m=self.m, w=self.w,
            granted=self.granted, rejected=self.rejected,
            tree=self.tree, children=children,
        )

    # ------------------------------------------------------------------
    def _serve(self, request: Request) -> Outcome:
        while True:
            if self.rejecting:
                self.rejected += 1
                return Outcome(OutcomeStatus.REJECTED, request)
            main_outcome = self._main.submit_and_run(request)
            if main_outcome.status is OutcomeStatus.PENDING:
                # The global budget M_i = M - sum(Y) is spent (minus at
                # most W): the composite controller rejects from now on.
                self._enter_reject_mode()
                self.rejected += 1
                return Outcome(OutcomeStatus.REJECTED, request)
            if main_outcome.status is OutcomeStatus.CANCELLED:
                return main_outcome
            if not request.kind.is_topological:
                self.granted += 1
                return main_outcome
            # Topological: also needs a permit from the change counter.
            tick = Request(RequestKind.PLAIN, request.node)
            counter_outcome = self._change_counter.submit_and_run(tick)
            if counter_outcome.status is OutcomeStatus.PENDING:
                # Epoch boundary: between U_i/4 and U_i/2 changes
                # happened.  The main permit for this request is part of
                # Y_i accounting either way; re-serve in the new epoch.
                self._rollover()
                continue
            # Both permits in hand: the entity performs the change.
            self.granted += 1
            new_node = perform_event(self.tree, request)
            return Outcome(OutcomeStatus.GRANTED, request,
                           new_node=new_node)

    # ------------------------------------------------------------------
    def _start_epoch(self, budget: int) -> None:
        self.epochs_run += 1
        n_i = self.tree.size
        u_i = max(2 * n_i, 2)
        self._epoch_u = u_i
        self._main = DistributedController(
            self.tree, m=budget, w=self.w, u=u_i,
            scheduler=self.scheduler, delays=self.delays,
            counters=self.counters, terminate_on_exhaustion=True,
            apply_topology=False,
        )
        self._change_counter = DistributedController(
            self.tree, m=max(u_i // 2, 1), w=max(u_i // 4, 1), u=u_i,
            scheduler=self.scheduler, delays=self.delays,
            counters=self.counters, terminate_on_exhaustion=True,
            apply_topology=False,
        )

    def _rollover(self) -> None:
        leftover = self.m - self._total_main_granted()
        self._detach_epoch()
        # Count N_{i+1} and Y_i, reset the structures: 3 broadcast/upcast
        # rounds over the tree.
        self.counters.broadcast_messages += 3 * max(self.tree.size - 1, 0)
        self._start_epoch(leftover)

    def _total_main_granted(self) -> int:
        base = getattr(self, "_granted_base", 0)
        current = self._main.granted if self._main is not None else 0
        return base + current

    def _detach_epoch(self) -> None:
        self._granted_base = self._total_main_granted()
        self._main.detach()
        self._change_counter.detach()
        self._main = None
        self._change_counter = None

    def _enter_reject_mode(self) -> None:
        self.rejecting = True
        self.counters.reject_messages += self.tree.size
        self._detach_epoch()

    def detach(self) -> None:
        if self._main is not None:
            self._detach_epoch()
