"""Mobile request agents (Section 4.3.1).

An agent is created when a request arrives; it carries its request, its
locked path (the taxi layer of Section 4.3.2 is realized by the path
list: ``Distance`` is ``len(path) - 1``, ``DistToTop`` is the index of
the topmost locked node, and the Down routing uses the saved path
instead of per-node saved ports — an equivalent representation under
the graceful-change contract, since splices patch the path exactly
where the paper's pointer hand-over would re-point ports).

The ``Bag`` of the paper (the level of the package being distributed)
is the ``package`` field.

``Agent`` is a ``__slots__`` class, not a dataclass: the distributed
engine allocates one agent per request and touches its fields on every
hop, so the per-instance ``__dict__`` (and the dataclass ``__init__``
indirection) is measurable overhead on the message fast path.  The
field list and defaults are identical to the historical dataclass.
"""

import itertools
from enum import Enum
from typing import Any, Callable, List, Optional

from repro.core.packages import MobilePackage
from repro.core.requests import Outcome, Request
from repro.tree.node import TreeNode

_agent_ids = itertools.count()


class AgentState(Enum):
    """Where the agent is in its journey.

    The splice rules key off this: a new internal node is handed to the
    agent locking the child endpoint only while that agent still travels
    *upward* (CLIMBING / WAITING); in every downward phase the agent has
    already turned around and will never pass the new node.
    """

    CLIMBING = "climbing"
    WAITING = "waiting"
    DESCENDING = "descending"      # distributing a package (Proc)
    RETURNING = "returning"        # post-grant walk back to the top
    UNLOCKING = "unlocking"        # final downward unlock pass
    DONE = "done"


class Agent:
    """One request's mobile agent."""

    __slots__ = (
        "request",
        "origin",
        "callback",
        "agent_id",
        "state",
        # Locked path, origin first.  path[0] is always the origin (the
        # only exception is transient: the origin is popped when the
        # agent's own deletion request removes it).
        "path",
        # Position index into ``path`` during downward/upward phases.
        "pos",
        "package",
        # Remaining ``Proc`` split schedule (kernel ``SplitStep``s,
        # travel order) while distributing ``package`` down the path.
        "splits",
        "waiting_at",
        # Outcome to deliver at the end of the unlock walk (grants
        # deliver early, at grant time, per the paper's ordering).
        "final_outcome",
        "place_rejects",
        "delivered",
        # Node at which a pending lock hand-off resumes this agent (set
        # by the controller just before scheduling the resume event; an
        # agent has at most one hand-off in flight, so one slot serves
        # the phase-code dispatch without a per-event closure).
        "resume_node",
    )

    def __init__(self, request: Request, origin: TreeNode,
                 callback: Optional[Callable[[Outcome], None]] = None
                 ) -> None:
        self.request = request
        self.origin = origin
        self.callback = callback
        self.agent_id: int = next(_agent_ids)
        self.state: AgentState = AgentState.CLIMBING
        self.path: List[TreeNode] = []
        self.pos: int = 0
        self.package: Optional[MobilePackage] = None
        self.splits: Optional[List[Any]] = None
        self.waiting_at: Optional[TreeNode] = None
        self.final_outcome: Optional[Outcome] = None
        self.place_rejects: bool = False
        self.delivered: bool = False
        self.resume_node: Optional[TreeNode] = None

    @property
    def distance(self) -> int:
        """The taxi's Distance counter: hops from the origin."""
        return len(self.path) - 1

    def __hash__(self) -> int:
        return self.agent_id

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:
        return (f"<Agent {self.agent_id} {self.state.value} "
                f"req={self.request.kind.value}@{self.origin.node_id}>")
