"""Mobile request agents (Section 4.3.1).

An agent is created when a request arrives; it carries its request, its
locked path (the taxi layer of Section 4.3.2 is realized by the path
list: ``Distance`` is ``len(path) - 1``, ``DistToTop`` is the index of
the topmost locked node, and the Down routing uses the saved path
instead of per-node saved ports — an equivalent representation under
the graceful-change contract, since splices patch the path exactly
where the paper's pointer hand-over would re-point ports).

The ``Bag`` of the paper (the level of the package being distributed)
is the ``package`` field.
"""

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional

from repro.core.packages import MobilePackage
from repro.core.requests import Outcome, Request
from repro.tree.node import TreeNode

_agent_ids = itertools.count()


class AgentState(Enum):
    """Where the agent is in its journey.

    The splice rules key off this: a new internal node is handed to the
    agent locking the child endpoint only while that agent still travels
    *upward* (CLIMBING / WAITING); in every downward phase the agent has
    already turned around and will never pass the new node.
    """

    CLIMBING = "climbing"
    WAITING = "waiting"
    DESCENDING = "descending"      # distributing a package (Proc)
    RETURNING = "returning"        # post-grant walk back to the top
    UNLOCKING = "unlocking"        # final downward unlock pass
    DONE = "done"


@dataclass
class Agent:
    """One request's mobile agent."""

    request: Request
    origin: TreeNode
    callback: Optional[Callable[[Outcome], None]] = None
    agent_id: int = field(default_factory=lambda: next(_agent_ids))
    state: AgentState = AgentState.CLIMBING
    # Locked path, origin first.  path[0] is always the origin (the only
    # exception is transient: the origin is popped when the agent's own
    # deletion request removes it).
    path: List[TreeNode] = field(default_factory=list)
    # Position index into ``path`` during downward/upward phases.
    pos: int = 0
    package: Optional[MobilePackage] = None
    # Remaining ``Proc`` split schedule (kernel ``SplitStep``s, travel
    # order) while distributing ``package`` down the locked path.
    splits: Optional[List] = None
    waiting_at: Optional[TreeNode] = None
    # Outcome to deliver at the end of the unlock walk (grants deliver
    # early, at grant time, per the paper's ordering).
    final_outcome: Optional[Outcome] = None
    place_rejects: bool = False
    delivered: bool = False

    @property
    def distance(self) -> int:
        """The taxi's Distance counter: hops from the origin."""
        return len(self.path) - 1

    def __hash__(self) -> int:
        return self.agent_id

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:
        return (f"<Agent {self.agent_id} {self.state.value} "
                f"req={self.request.kind.value}@{self.origin.node_id}>")
