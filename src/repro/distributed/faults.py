"""Fault injection for the distributed engine.

Three fault families, all legal under the paper's model and therefore
required to preserve every guarantee:

* **agent stalls** — a hop's delay is inflated by a large factor.  The
  model only requires delays to be finite (Section 2.1), so a stalled
  agent is just a very slow message; liveness must survive.
* **delivery pauses** — global windows during which no message lands
  (every hop arriving inside the window is pushed past its end).  This
  models a network partition that heals: still a finite-delay
  assignment.
* **churn storms** — bursts of topology changes (splices targeting
  locked paths, deletions, leaf growth) fired while agents are
  mid-flight, exercising the graceful-change hand-over of Section 4.2.
  Storm operations respect the same preconditions a *granted* request
  would enjoy under the locking discipline: a splice ``(v, w)`` only
  happens while ``v`` is unlocked (the granting agent would hold ``v``
  at grant time and release it before the change becomes visible to
  others), and only unlocked nodes are deleted (a deletion grant holds
  the deleted node's lock as ``path[0]``, the one case the hand-over
  code supports — an environment deleting a node locked mid-path by a
  foreign agent would violate the model).

A :class:`FaultPlan` is pure data (so it can be parsed from a CLI
string and serialized into bench reports); a :class:`FaultInjector`
binds one plan to one controller run.
"""

import dataclasses
import random
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.distributed.controller import DistributedController
    from repro.tree.node import TreeNode


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject into one run."""

    seed: int = 0
    # Agent stalls: per-hop probability and delay inflation factor.
    stall_prob: float = 0.0
    stall_factor: float = 40.0
    # Global delivery pauses: how many windows, each this long, spread
    # uniformly over [0, horizon].
    pauses: int = 0
    pause_duration: float = 20.0
    # Churn storms: how many bursts of topology operations, each
    # performing up to storm_size changes, spread over [0, horizon].
    storms: int = 0
    storm_size: int = 8
    # Time window pauses/storms are spread over.  0 means *auto*: the
    # harness resolves it to the run's span via :meth:`resolved` before
    # building an injector (a fixed default would pin the faults to the
    # first sliver of a long run).
    horizon: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.stall_prob <= 1.0:
            raise SimulationError(
                f"stall_prob must be in [0, 1], got {self.stall_prob}")
        if self.stall_factor < 1.0:
            raise SimulationError(
                f"stall_factor must be >= 1, got {self.stall_factor}")
        if self.pauses < 0 or self.storms < 0 or self.storm_size < 0:
            raise SimulationError("fault counts must be non-negative")
        if self.pause_duration <= 0 or self.horizon < 0:
            raise SimulationError("durations must be positive")

    @property
    def is_noop(self) -> bool:
        return (self.stall_prob == 0.0 and self.pauses == 0
                and self.storms == 0)

    @property
    def needs_horizon(self) -> bool:
        return self.pauses > 0 or self.storms > 0

    def resolved(self, span: float) -> "FaultPlan":
        """This plan with an auto (0) horizon resolved to ``span``."""
        if self.horizon > 0 or not self.needs_horizon:
            return self
        return dataclasses.replace(self, horizon=max(span, 1.0))

    def snapshot(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


_FIELD_TYPES = {f.name: f.type for f in fields(FaultPlan)}


def parse_fault_spec(text: Optional[str]) -> FaultPlan:
    """Parse ``"stall=0.05,pauses=2,storms=3,seed=7"`` into a plan.

    Keys are :class:`FaultPlan` field names (``stall`` is accepted as a
    shorthand for ``stall_prob``); ``none`` / empty means no faults.
    """
    if not text or text.strip().lower() == "none":
        return FaultPlan()
    values = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise SimulationError(
                f"malformed fault spec item {part!r} (want key=value)")
        key, _, raw = part.partition("=")
        key = key.strip()
        if key == "stall":
            key = "stall_prob"
        if key not in _FIELD_TYPES:
            known = ", ".join(sorted(_FIELD_TYPES))
            raise SimulationError(
                f"unknown fault spec key {key!r}; known: {known}")
        caster = int if _FIELD_TYPES[key] in (int, "int") else float
        try:
            values[key] = caster(raw.strip())
        except ValueError:
            raise SimulationError(
                f"bad value {raw!r} for fault spec key {key!r}") from None
    return FaultPlan(**values)


class FaultInjector:
    """Binds a :class:`FaultPlan` to one distributed-controller run.

    The controller calls :meth:`perturb_hop` on every agent hop;
    :meth:`attach` (invoked by the controller's constructor) schedules
    the plan's churn storms on the controller's scheduler.  ``stats``
    records what was actually injected, for the bench JSON reports.
    """

    def __init__(self, plan: FaultPlan) -> None:
        if plan.needs_horizon and plan.horizon <= 0:
            raise SimulationError(
                "fault plan horizon unresolved: pass horizon=... or call "
                "plan.resolved(span) with the run's expected time span")
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._controller: "Optional[DistributedController]" = None
        self.stats: Dict[str, int] = {
            "stalls": 0,
            "paused_deliveries": 0,
            "storm_ops": 0,
            "storm_splices": 0,
            "storm_removals": 0,
            "storm_additions": 0,
        }
        # Pause windows are sampled eagerly so the plan alone (not the
        # interleaving) determines where the network goes dark.
        self._windows: List[Tuple[float, float]] = sorted(
            (start, start + plan.pause_duration)
            for start in (self._rng.uniform(0.0, plan.horizon)
                          for _ in range(plan.pauses))
        )
        self._storm_times = sorted(
            self._rng.uniform(0.0, plan.horizon) for _ in range(plan.storms))

    # ------------------------------------------------------------------
    def attach(self, controller: "DistributedController") -> None:
        """Bind to a controller; schedule the churn storms."""
        if self._controller is not None:
            raise SimulationError("fault injector already attached")
        self._controller = controller
        for at in self._storm_times:
            controller.scheduler.schedule_at(at, self._run_storm)

    def perturb_hop(self, now: float, delay: float) -> float:
        """Apply stalls and pause windows to one hop's sampled delay."""
        plan = self.plan
        if plan.stall_prob and self._rng.random() < plan.stall_prob:
            delay *= plan.stall_factor
            self.stats["stalls"] += 1
        if self._windows:
            arrival = now + delay
            clamped = False
            # Windows are sorted, so pushing an arrival past one window's
            # end lets the next iteration re-check the later windows.
            for start, end in self._windows:
                if start <= arrival < end:
                    arrival = end
                    clamped = True
            if clamped:
                self.stats["paused_deliveries"] += 1
                delay = arrival - now
        return delay

    # ------------------------------------------------------------------
    # Churn storms.
    # ------------------------------------------------------------------
    def _run_storm(self) -> None:
        controller = self._controller
        assert controller is not None  # storms are scheduled by attach()
        tree = controller.tree
        boards = controller.boards
        rng = self._rng

        def unlocked(node: "TreeNode") -> bool:
            board = boards.peek(node)
            return board is None or board.locked_by is None

        performed = 0
        budget = self.plan.storm_size
        attempts = 0
        while performed < budget and attempts < budget * 8:
            attempts += 1
            nodes = [n for n in tree.nodes()]
            if len(nodes) < 2:
                break
            roll = rng.random()
            if roll < 0.40:
                # Splice: prefer an edge whose child endpoint is locked —
                # that is exactly the Section 4.2 hand-over case the
                # storm exists to provoke.
                locked_children = [
                    n for n in nodes
                    if not n.is_root and not unlocked(n)
                    and unlocked(n.parent)
                ]
                pool = locked_children or [
                    n for n in nodes
                    if not n.is_root and unlocked(n.parent)
                ]
                if not pool:
                    continue
                child = pool[rng.randrange(len(pool))]
                tree.add_internal(child.parent, child)
                self.stats["storm_splices"] += 1
            elif roll < 0.65:
                leaves = [n for n in nodes
                          if not n.is_root and not n.children
                          and unlocked(n)]
                if not leaves:
                    continue
                tree.remove_leaf(leaves[rng.randrange(len(leaves))])
                self.stats["storm_removals"] += 1
            elif roll < 0.85:
                internals = [n for n in nodes
                             if not n.is_root and n.children
                             and unlocked(n)]
                if not internals:
                    continue
                tree.remove_internal(internals[rng.randrange(len(internals))])
                self.stats["storm_removals"] += 1
            else:
                tree.add_leaf(nodes[rng.randrange(len(nodes))])
                self.stats["storm_additions"] += 1
            performed += 1
        self.stats["storm_ops"] += performed
