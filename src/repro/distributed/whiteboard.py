"""Per-node whiteboard state (Section 4.3.1).

The whiteboard at a node holds the node's package store, the lock
variable (``state`` in the paper: locked/unlocked, here the locking
agent or ``None``), and the FIFO queue of agents waiting for the lock.
Agents read and write a whiteboard only while visiting the node — the
simulator enforces this structurally because all whiteboard access goes
through the controller's arrival handlers.
"""

from collections import deque
from typing import Deque, Dict, ItemsView, Optional

from repro.core.packages import NodeStore
from repro.tree.node import TreeNode


class Whiteboard:
    """State stored at one node by the distributed controller.

    A ``__slots__`` class: whiteboards are probed on every agent hop
    (lock check, filler check), so the per-instance ``__dict__`` is
    dropped alongside the rest of the message fast path's allocations.
    """

    __slots__ = ("store", "locked_by", "queue")

    def __init__(self, store: Optional[NodeStore] = None,
                 locked_by: Optional[object] = None,
                 queue: Optional[Deque[object]] = None) -> None:
        self.store = store if store is not None else NodeStore()
        self.locked_by = locked_by  # the Agent holding the lock
        self.queue: Deque[object] = queue if queue is not None else deque()

    @property
    def is_empty(self) -> bool:
        return (self.store.is_empty and self.locked_by is None
                and not self.queue)

    def __repr__(self) -> str:
        return (f"Whiteboard(store={self.store!r}, "
                f"locked_by={self.locked_by!r}, queue={self.queue!r})")


class WhiteboardMap:
    """Lazy node -> whiteboard map (nodes without state cost nothing)."""

    __slots__ = ("_boards",)

    def __init__(self) -> None:
        self._boards: Dict[TreeNode, Whiteboard] = {}

    def get(self, node: TreeNode) -> Whiteboard:
        board = self._boards.get(node)
        if board is None:
            board = Whiteboard()
            self._boards[node] = board
        return board

    def peek(self, node: TreeNode) -> Optional[Whiteboard]:
        return self._boards.get(node)

    def discard(self, node: TreeNode) -> Optional[Whiteboard]:
        return self._boards.pop(node, None)

    def items(self) -> ItemsView[TreeNode, Whiteboard]:
        return self._boards.items()

    def total_parked_permits(self) -> int:
        return sum(b.store.total_permits() for b in self._boards.values())

    def clear(self) -> None:
        self._boards.clear()
