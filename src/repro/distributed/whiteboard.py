"""Per-node whiteboard state (Section 4.3.1).

The whiteboard at a node holds the node's package store, the lock
variable (``state`` in the paper: locked/unlocked, here the locking
agent or ``None``), and the FIFO queue of agents waiting for the lock.
Agents read and write a whiteboard only while visiting the node — the
simulator enforces this structurally because all whiteboard access goes
through the controller's arrival handlers.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.core.packages import NodeStore


@dataclass
class Whiteboard:
    """State stored at one node by the distributed controller."""

    store: NodeStore = field(default_factory=NodeStore)
    locked_by: Optional[object] = None  # the Agent holding the lock
    queue: Deque[object] = field(default_factory=deque)

    @property
    def is_empty(self) -> bool:
        return (self.store.is_empty and self.locked_by is None
                and not self.queue)


class WhiteboardMap:
    """Lazy node -> whiteboard map (nodes without state cost nothing)."""

    def __init__(self):
        self._boards: Dict[object, Whiteboard] = {}

    def get(self, node) -> Whiteboard:
        board = self._boards.get(node)
        if board is None:
            board = Whiteboard()
            self._boards[node] = board
        return board

    def peek(self, node) -> Optional[Whiteboard]:
        return self._boards.get(node)

    def discard(self, node) -> Optional[Whiteboard]:
        return self._boards.pop(node, None)

    def items(self):
        return self._boards.items()

    def total_parked_permits(self) -> int:
        return sum(b.store.total_permits() for b in self._boards.values())

    def clear(self) -> None:
        self._boards.clear()
