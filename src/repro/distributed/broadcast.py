"""Broadcast / upcast (convergecast) message accounting.

The paper repeatedly charges "a broadcast and upcast operation" — for
termination detection (Observation 2.1), for counting ``N_{i+1}`` and
``Y_i`` between epochs (Appendix A), and for the DFS traversals of the
name-assignment protocol (Section 5.2).  On a tree with n nodes a
broadcast sends one message per edge (n - 1) and an upcast sends one
message per edge back; a DFS traversal sends two messages per edge.

These helpers centralize that accounting so every layer charges the
same way.
"""

from repro.tree.dynamic_tree import DynamicTree


def broadcast_cost(tree: DynamicTree) -> int:
    """Messages for a root-to-all broadcast: one per tree edge."""
    return max(tree.size - 1, 0)


def upcast_cost(tree: DynamicTree) -> int:
    """Messages for an all-to-root upcast: one per tree edge."""
    return max(tree.size - 1, 0)


def dfs_traversal_cost(tree: DynamicTree) -> int:
    """Messages for one full DFS traversal: two per tree edge."""
    return 2 * max(tree.size - 1, 0)
