"""The distributed (M,W)-Controller (Sections 4.3-4.4).

Execution model: requests are submitted with :meth:`DistributedController.submit`
(optionally at staggered simulated times); :meth:`run` drains the event
queue.  Every agent hop costs one message; reject waves cost one message
per node; deletions cost the ``O(deg(v) + log^2 U)`` data-move messages
of the discussion after Lemma 4.5.

The locking discipline follows Section 4.3.1 exactly:

* an agent locks every node on its way up; reaching a locked node it
  waits in the node's FIFO queue;
* when a node is unlocked, the lock is handed atomically to the head
  waiter, which resumes "as if it had just entered the node";
* after finding a filler/creating at the root, the agent performs
  ``Proc`` down the locked path, grants at the origin, climbs back to
  the topmost node it reached, then descends unlocking every node.

The permit/package *mechanics* are the shared kernel's
(:mod:`repro.core.kernel`): the ledger owns storage and tallies, the
whiteboard filler check is the kernel's level-indexed lookup, and the
``Proc`` split schedule is a kernel distribution plan whose steps the
agent matches against its locked-path position while descending.  This
class supplies only the execution discipline — agents, locks, one
message per hop.

Graceful topology changes (Section 4.2) are implemented in the tree
listener hooks at the bottom of this class; the correctness argument of
Lemma 4.3/4.5 (serializability of the distributed execution into the
centralized one) is exercised directly by ``tests/distributed/``, which
compare grant totals and package layouts against the centralized engine
on identical scenarios — and, transition-for-transition, by the kernel
trace equality of ``tests/test_kernel_equivalence.py``.
"""

from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ControllerError, ProtocolError
from repro.metrics.counters import MessageCounters
from repro.protocol import ControllerView
from repro.sim.delays import DelayModel, UniformDelay
from repro.sim.fastsched import FastScheduler, warn_fast_path_fallback
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Tracer
from repro.tree.dynamic_tree import DynamicTree, TreeListener
from repro.tree.node import TreeNode
from repro.core import kernel
from repro.core.kernel import KernelTrace, PermitLedger
from repro.core.packages import MobilePackage
from repro.core.params import ControllerParams
from repro.core.requests import (
    Outcome,
    OutcomeStatus,
    Request,
    RequestKind,
    perform_event,
)
from repro.distributed.agent import Agent, AgentState
from repro.distributed.faults import FaultInjector
from repro.distributed.whiteboard import Whiteboard, WhiteboardMap

# Hop phase codes: each in-flight message is (phase, agent); arrival
# dispatches through a per-controller table of bound methods indexed by
# these small ints (``_dispatch``), so the fast path schedules a hop
# without allocating a closure per message.  The reference path uses
# the same table (one closure per hop, as historically).
_CLIMB = 0            # upward hop lands at path[-1].parent
_DESCEND = 1          # distribution walk, next node down the path
_RETURN = 2           # post-grant walk back up to the topmost lock
_UNLOCK_ARRIVE = 3    # unlock walk, next node down the path
_UNLOCK_HERE = 4      # unlock walk entered at the current position
_RESUME = 5           # lock hand-off resume (at agent.resume_node)


class DistributedController(TreeListener):
    """Distributed (M,W)-Controller with known bound U.

    Parameters
    ----------
    terminate_on_exhaustion:
        False (default): broadcast a reject wave when the root's storage
        cannot cover a request (the plain controller).  True: switch to
        the *terminating* behaviour of Observation 2.1 — no rejects;
        the exhausting and all later requests come back ``PENDING`` and
        :attr:`terminated` flips after the termination broadcast/upcast.
    apply_topology:
        When True the controller performs granted topological changes on
        the tree itself (playing the requesting entity).
    faults:
        Optional :class:`repro.distributed.faults.FaultInjector`.  When
        given, every agent hop's delay passes through the injector
        (agent stalls, delivery pauses) and the injector's churn storms
        are scheduled on this controller's scheduler.  All injected
        faults are legal under the asynchronous model, so every
        controller guarantee must hold unchanged.
    indexed_stores:
        Use the kernel's level-windowed (indexed) filler lookup at each
        whiteboard (default).  ``False`` restores the legacy linear
        board scan — kept only so the ``kernel`` bench can measure the
        before/after; results are identical either way.
    kernel_trace:
        Optional :class:`repro.core.kernel.KernelTrace` recording every
        kernel transition (take/create/park/absorb/grant/reject-wave);
        a serialized run's trace equals the centralized engine's on the
        same stream (the Lemma 4.5 reduction, property-tested).
    track_intervals / interval_base:
        Interval mode (Section 5.2, the name-assignment protocol):
        packages created at the root carve explicit serial-number
        intervals ``interval_base + 1 .. interval_base + m`` out of the
        ledger, ``Proc`` splits halve the interval alongside the
        permits, and every granted outcome carries the serial it
        consumed from the origin's static pool — the same plumbing the
        centralized engine runs, so a serialized distributed run grants
        the identical serials.
    permit_flow_observer:
        ``observer(node, permits)``, invoked whenever a package
        carrying ``permits`` permits passes *down* into ``node`` while
        an agent walks its distribution plan (plus once at the root
        when fresh permits enter circulation) — the Lemma 5.3
        monitoring hook, free of extra messages because nodes watch
        traffic already passing through them.
    """

    def __init__(self, tree: DynamicTree, m: int, w: int, u: int,
                 scheduler: Optional[Scheduler] = None,
                 delays: Optional[DelayModel] = None,
                 counters: Optional[MessageCounters] = None,
                 tracer: Optional[Tracer] = None,
                 terminate_on_exhaustion: bool = False,
                 apply_topology: bool = True,
                 faults: Optional[FaultInjector] = None,
                 indexed_stores: bool = True,
                 kernel_trace: Optional[KernelTrace] = None,
                 track_intervals: bool = False,
                 interval_base: int = 0,
                 permit_flow_observer: Optional[
                     Callable[[TreeNode, int], None]] = None,
                 fast_path: bool = False) -> None:
        self.tree = tree
        self.params = ControllerParams(m=m, w=w, u=u)
        if scheduler is None:
            scheduler = FastScheduler() if fast_path else Scheduler()
        elif fast_path and not isinstance(scheduler, FastScheduler):
            warn_fast_path_fallback(
                "an externally-wired reference scheduler is attached")
        self.scheduler = scheduler
        self.delays = delays if delays is not None else UniformDelay(seed=0)
        self.counters = counters if counters is not None else MessageCounters()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.faults = faults
        if faults is not None:
            faults.attach(self)
        self.terminate_on_exhaustion = terminate_on_exhaustion
        self._apply_topology = apply_topology

        self.boards = WhiteboardMap()
        self._trace = kernel_trace
        self._indexed_stores = indexed_stores
        self.track_intervals = track_intervals
        self.permit_flow_observer = permit_flow_observer
        self._ledger = PermitLedger(params=self.params, storage=m,
                                    track_intervals=track_intervals,
                                    interval_base=interval_base,
                                    trace=kernel_trace)
        self.cancelled = 0
        self.pending = 0
        self.rejecting = False
        self.terminated = False
        self.outcomes: List[Outcome] = []
        self.active_agents = 0
        self._attached = True
        # Hop dispatch: phase code -> bound arrival method, bound once
        # (each ``self._method`` read allocates a fresh bound method, so
        # the table is the only place that pays it).  ``_fast`` selects
        # the allocation-free ``schedule_call`` path; hot collaborators
        # (delay sampling, board lookup) are bound once for the same
        # reason.
        self._fast = isinstance(self.scheduler, FastScheduler)
        self._dispatch = (self._climb_arrive, self._descend_arrive,
                          self._return_arrive, self._unlock_arrive,
                          self._unlock_current, self._resume_handoff)
        self._schedule_call = (self.scheduler.schedule_call
                               if self._fast else None)
        self._sample = self.delays.sample
        self._board_of = self.boards.get
        self._perturb = (self.faults.perturb_hop
                         if self.faults is not None else None)
        # Uniform delays ignore the hop key, so the fast path may draw
        # inline and skip the key extraction entirely (bit-identical
        # draws — see UniformDelay.hot_sampler).  Exact-type check:
        # a subclass may override sample() or start reading the key.
        self._uniform = (self.delays.hot_sampler()
                         if self._fast and type(self.delays) is UniformDelay
                         else None)
        tree.add_listener(self)

    # ------------------------------------------------------------------
    # Ledger delegation (setters kept for doctored-state tests).
    # ------------------------------------------------------------------
    @property
    def storage(self) -> int:
        return self._ledger.storage

    @storage.setter
    def storage(self, value: int) -> None:
        self._ledger.storage = value

    @property
    def granted(self) -> int:
        return self._ledger.granted

    @granted.setter
    def granted(self, value: int) -> None:
        self._ledger.granted = value

    @property
    def rejected(self) -> int:
        return self._ledger.rejected

    @rejected.setter
    def rejected(self, value: int) -> None:
        self._ledger.rejected = value

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def submit(self, request: Request, delay: float = 0.0,
               callback: Optional[Callable[[Outcome], None]] = None) -> None:
        """Schedule a request's arrival ``delay`` time units from now."""
        if not self._attached:
            raise ControllerError("controller has been detached")
        self.scheduler.schedule(
            delay, lambda: self._on_request_arrival(request, callback)
        )

    def run(self) -> None:
        """Drain the event queue (all in-flight agents complete)."""
        self.scheduler.run()

    def submit_and_run(self, request: Request) -> Outcome:
        """Convenience for tests: one request, run to quiescence."""
        result: List[Outcome] = []
        self.submit(request, callback=result.append)
        self.run()
        if not result:
            raise ProtocolError(f"request {request.request_id} never resolved")
        return result[0]

    def submit_batch(self, requests: List[Request],
                     stagger: float = 0.0) -> List[Outcome]:
        """Pipeline a batch of concurrent requests through the engine.

        All requests are injected up front (arrival times ``0``,
        ``stagger``, ``2 * stagger``, ...), their agents interleave on
        the tree under the Section 4.3.1 locking discipline, and the
        scheduler runs to quiescence.  Outcomes are returned in
        *submission order* (agents resolve in whatever order the
        asynchrony produces; the mapping back is by request identity).

        This is the distributed twin of the centralized controllers'
        ``handle_batch``: instead of amortizing ancestry repairs it
        amortizes network latency — agents on disjoint root-path
        segments climb concurrently, so a batch completes in far fewer
        simulated time units than sequential ``submit_and_run`` calls.
        """
        requests = list(requests)
        resolved: Dict[int, Outcome] = {}

        def settle(outcome: Outcome) -> None:
            resolved[outcome.request.request_id] = outcome

        for position, request in enumerate(requests):
            self.submit(request, delay=position * stagger, callback=settle)
        self.run()
        missing = [r for r in requests if r.request_id not in resolved]
        if missing:
            raise ProtocolError(
                f"{len(missing)} batch requests never resolved")
        return [resolved[r.request_id] for r in requests]

    def handle(self, request: Request) -> Outcome:
        """Protocol form of :meth:`submit_and_run`: one request, run to
        quiescence, outcome returned synchronously."""
        return self.submit_and_run(request)

    def handle_batch(self, requests: Iterable[Request]) -> List[Outcome]:
        """Protocol form of :meth:`submit_batch` (zero stagger)."""
        return self.submit_batch(list(requests))

    def unused_permits(self) -> int:
        return self._ledger.unused(self.boards.total_parked_permits())

    def detach(self) -> None:
        if self._attached:
            self.tree.remove_listener(self)
            self._attached = False

    def introspect(self) -> ControllerView:
        """The :class:`repro.protocol.ControllerProtocol` audit view."""
        return ControllerView(
            flavor="distributed", m=self.params.m, w=self.params.w,
            granted=self.granted, rejected=self.rejected,
            params=self.params, storage=self.storage, boards=self.boards,
            tree=self.tree, active_agents=self.active_agents,
            terminated=self.terminated,
        )

    # ------------------------------------------------------------------
    # Request arrival (algorithm item 1).
    # ------------------------------------------------------------------
    def _on_request_arrival(self, request: Request,
                            callback: Optional[Callable[[Outcome], None]]
                            ) -> None:
        node = request.node
        # A request whose event is already meaningless is cancelled at
        # arrival (every meaningfulness condition of Section 4.2 is
        # local to the origin node, so the requesting entity can observe
        # it without travelling) — matching the centralized engine's
        # pre-flight check and saving the agent's round trip.  Events
        # that lose their meaning *mid-flight* are still caught by the
        # grant-time check in ``_grant_from_static``.
        if not self._still_meaningful(request):
            self._record(Outcome(OutcomeStatus.CANCELLED, request), callback)
            return
        if self.terminated:
            self._record(Outcome(OutcomeStatus.PENDING, request), callback)
            return
        agent = Agent(request=request, origin=node, callback=callback)
        self.active_agents += 1
        self.tracer.emit(self.scheduler.now, "agent_created",
                         agent=agent.agent_id, node=node.node_id)
        board = self.boards.get(node)
        if board.store.has_reject:
            # Item 1b: created at a reject node.
            self._deliver(agent, OutcomeStatus.REJECTED)
            return
        if board.locked_by is None:
            board.locked_by = agent
            agent.path = [node]
            self._after_lock(agent)
        else:
            agent.state = AgentState.WAITING
            agent.waiting_at = node
            board.queue.append(agent)

    # ------------------------------------------------------------------
    # Lock acquisition and the per-node decision (items 2-3).
    # ------------------------------------------------------------------
    def _after_lock(self, agent: Agent) -> None:
        """Agent just locked ``path[-1]``; decide what to do there."""
        node = agent.path[-1]
        board = self._board_of(node)
        agent.state = AgentState.CLIMBING
        agent.waiting_at = None

        # Item 2: at the origin, a static permit grants immediately.
        if len(agent.path) == 1 and board.store.static_permits > 0:
            self._grant_from_static(agent)
            return

        # Item 3a: filler check at the current distance.
        package = self._take_filler(board, agent.distance, node)
        if package is not None:
            self.tracer.emit(self.scheduler.now, "filler_found",
                             agent=agent.agent_id, node=node.node_id,
                             level=package.level, dist=agent.distance)
            self._begin_distribution(agent, package)
            return

        # Item 3c: at the root, create or exhaust.
        if node.is_root:
            self._at_root(agent)
            return

        # Keep climbing.
        self._hop(agent, _CLIMB)

    def _take_filler(self, board: Whiteboard, dist: int,
                     node: Optional[TreeNode] = None
                     ) -> Optional[MobilePackage]:
        """Item 3a's whiteboard check, via the kernel.

        The default is the kernel's level-windowed lookup (one window
        computation plus one dict probe); ``indexed_stores=False``
        falls back to the legacy linear board scan, which the ``kernel``
        bench uses as its before/after baseline.
        """
        if self._indexed_stores:
            return kernel.take_filler(board.store, dist, self.params,
                                      node=node, trace=self._trace)
        chosen = kernel.scan_filler(board.store, dist, self.params)
        if chosen is not None:
            kernel.take_package(board.store, chosen, node=node, dist=dist,
                                trace=self._trace)
        return chosen

    def _climb_arrive(self, agent: Agent) -> None:
        """The agent's upward hop lands at ``path[-1].parent``.

        The parent is resolved *at arrival time*: if a graceful splice
        re-shaped the path mid-flight, the agent lands on the logically
        correct next node.
        """
        parent = agent.path[-1].parent
        if parent is None:
            raise ProtocolError(f"{agent} climbed past the root")
        board = self._board_of(parent)
        if board.store.has_reject:
            # Item 1b: walk home placing rejects.  One hop back onto the
            # locked path, then the unlock walk.
            agent.place_rejects = True
            agent.final_outcome = Outcome(OutcomeStatus.REJECTED,
                                          agent.request)
            agent.state = AgentState.UNLOCKING
            agent.pos = len(agent.path) - 1
            self._hop(agent, _UNLOCK_HERE)
            return
        if board.locked_by is not None:
            agent.state = AgentState.WAITING
            agent.waiting_at = parent
            board.queue.append(agent)
            return
        board.locked_by = agent
        agent.path.append(parent)
        self._after_lock(agent)

    def _at_root(self, agent: Agent) -> None:
        """Item 3c: create a package at the root, or exhaust."""
        dist = agent.distance
        level = self.params.creation_level(dist)
        need = self.params.mobile_size(level)
        if self._ledger.covers(need):
            package = self._ledger.create_package(level, dist)
            self.tracer.emit(self.scheduler.now, "root_created",
                             agent=agent.agent_id, level=level, size=need)
            if self.permit_flow_observer is not None:
                # Freshly created permits "enter" the root as well.
                self.permit_flow_observer(self.tree.root, package.size)
            self._begin_distribution(agent, package)
            return
        # Exhaustion.
        if self.terminate_on_exhaustion:
            if not self.terminated:
                self.terminated = True
                # Termination broadcast + upcast (Observation 2.1).
                self.counters.broadcast_messages += 2 * self.tree.size
                self.tracer.emit(self.scheduler.now, "terminated")
            agent.final_outcome = Outcome(OutcomeStatus.PENDING,
                                          agent.request)
        else:
            if not self.rejecting:
                self._broadcast_reject_wave()
            agent.place_rejects = True
            agent.final_outcome = Outcome(OutcomeStatus.REJECTED,
                                          agent.request)
        agent.state = AgentState.UNLOCKING
        agent.pos = len(agent.path) - 1
        self._unlock_current(agent)

    def _broadcast_reject_wave(self) -> None:
        """Reject agents flood the tree: one message per node.

        Modelled as an atomic placement (the wave's asynchrony does not
        interact with correctness: a node rejects only once its own flag
        is set, and we set flags before any later event runs).  The
        one-message-per-node accounting comes from the kernel's
        reject-wave plan.
        """
        self.rejecting = True
        self.counters.reject_messages += kernel.broadcast_reject(
            self.tree, lambda node: self.boards.get(node).store,
            trace=self._trace)
        self.tracer.emit(self.scheduler.now, "reject_wave")

    # ------------------------------------------------------------------
    # Distribution (item 4, Proc) and granting.
    # ------------------------------------------------------------------
    def _begin_distribution(self, agent: Agent,
                            package: MobilePackage) -> None:
        """Item 4: plan ``Proc`` once, then walk the plan down the path.

        The split schedule is the same kernel plan the centralized
        executor applies synchronously; here each ``SplitStep.dist`` is
        matched against the agent's path position as it descends (the
        locked path *is* the distance scale, including under graceful
        splices, which patch both in lockstep).
        """
        agent.package = package
        agent.splits = list(kernel.plan_distribution(
            self.params, package.level, package.size,
            agent.distance).steps)
        agent.pos = len(agent.path) - 1
        if agent.pos == 0:
            # Filler at the origin itself (level 0 at distance 0).
            self._package_reaches_origin(agent)
            return
        agent.state = AgentState.DESCENDING
        self._hop(agent, _DESCEND)

    def _descend_arrive(self, agent: Agent) -> None:
        agent.pos -= 1
        node = agent.path[agent.pos]
        package = agent.package
        if self.permit_flow_observer is not None:
            # The package enters ``node`` still at its pre-split size.
            self.permit_flow_observer(node, package.size)
        while agent.splits and agent.pos == agent.splits[0].dist:
            step = agent.splits.pop(0)
            left_interval, right_interval = package.split_interval()
            parked = MobilePackage(level=step.level, size=step.size,
                                   interval=left_interval)
            kernel.park(self.boards.get(node).store, parked, node=node,
                        trace=self._trace)
            package.level = step.level
            package.size = step.size
            package.interval = right_interval
            self.tracer.emit(self.scheduler.now, "split",
                             agent=agent.agent_id, node=node.node_id,
                             level=step.level)
        if agent.pos == 0:
            self._package_reaches_origin(agent)
        else:
            self._hop(agent, _DESCEND)

    def _package_reaches_origin(self, agent: Agent) -> None:
        """The level-0 package becomes the origin's static pool."""
        package = agent.package
        if package.level != 0:
            raise ProtocolError(
                f"package level {package.level} reached origin of {agent}"
            )
        origin = agent.path[0]
        board = self.boards.get(origin)
        kernel.absorb(board.store, package, node=origin, trace=self._trace)
        agent.package = None
        agent.splits = None
        self._grant_from_static(agent)

    def _grant_from_static(self, agent: Agent) -> None:
        """Grant at the origin, perform the event, start the return walk."""
        origin = agent.path[0]
        board = self.boards.get(origin)
        request = agent.request
        if not self._still_meaningful(request):
            # The event lost its meaning while the agent travelled
            # (Section 4.2); the static permit stays for future requests.
            agent.final_outcome = Outcome(OutcomeStatus.CANCELLED, request)
        else:
            board.store.static_permits -= 1
            serial = (board.store.take_static_serial()
                      if self.track_intervals else None)
            self._ledger.grant(origin)
            new_node = None
            if self._apply_topology and request.kind.is_topological:
                new_node = perform_event(self.tree, request)
            self.tracer.emit(self.scheduler.now, "granted",
                             agent=agent.agent_id, node=origin.node_id)
            # Grants are delivered at grant time (the walk is cleanup).
            self._record(Outcome(OutcomeStatus.GRANTED, request,
                                 new_node=new_node, serial=serial),
                         agent.callback)
            agent.delivered = True
        # A self-deletion with a single-node path leaves nothing locked.
        if not agent.path:
            agent.state = AgentState.DONE
            self.active_agents -= 1
            return
        # Walk up to the topmost locked node, then descend unlocking.
        agent.pos = 0
        if agent.pos == len(agent.path) - 1:
            agent.state = AgentState.UNLOCKING
            self._unlock_current(agent)
        else:
            agent.state = AgentState.RETURNING
            self._hop(agent, _RETURN)

    def _return_arrive(self, agent: Agent) -> None:
        agent.pos += 1
        if agent.pos == len(agent.path) - 1:
            agent.state = AgentState.UNLOCKING
            self._unlock_current(agent)
        else:
            self._hop(agent, _RETURN)

    # ------------------------------------------------------------------
    # The final unlock walk (and reject placement).
    # ------------------------------------------------------------------
    def _unlock_current(self, agent: Agent) -> None:
        node = agent.path[agent.pos]
        board = self._board_of(node)
        if agent.place_rejects:
            board.store.has_reject = True
        if board.locked_by is agent:
            self._release_lock(node)
        if agent.pos == 0:
            self._finish(agent)
        else:
            self._hop(agent, _UNLOCK_ARRIVE)

    def _unlock_arrive(self, agent: Agent) -> None:
        agent.pos -= 1
        self._unlock_current(agent)

    def _finish(self, agent: Agent) -> None:
        agent.state = AgentState.DONE
        if agent.final_outcome is not None and not agent.delivered:
            self._record(agent.final_outcome, agent.callback)
            agent.delivered = True
        elif agent.final_outcome is None and not agent.delivered:
            raise ProtocolError(f"{agent} finished without an outcome")
        self.active_agents -= 1

    def _release_lock(self, node: TreeNode) -> None:
        """Unlock ``node``, handing the lock to the head waiter (FIFO)."""
        board = self.boards.get(node)
        board.locked_by = None
        if board.queue:
            waiter = board.queue.popleft()
            board.locked_by = waiter
            self._schedule_resume(waiter, node)

    def _resumed_at(self, agent: Agent, node: TreeNode) -> None:
        """A dequeued agent resumes holding ``node``'s lock."""
        board = self.boards.get(node)
        if board.locked_by is not agent:
            raise ProtocolError(f"{agent} resumed without the lock")
        if board.store.has_reject:
            # The node turned into a reject node while the agent waited.
            self._release_lock(node)
            if not agent.path:
                self._deliver(agent, OutcomeStatus.REJECTED)
                return
            agent.place_rejects = True
            agent.final_outcome = Outcome(OutcomeStatus.REJECTED,
                                          agent.request)
            agent.state = AgentState.UNLOCKING
            agent.pos = len(agent.path) - 1
            self._unlock_current(agent)
            return
        agent.path.append(node)
        self._after_lock(agent)

    # ------------------------------------------------------------------
    # Hop primitive: one message per hop.
    # ------------------------------------------------------------------
    def _hop(self, agent: Agent, phase: int) -> None:
        self.counters.agent_hops += 1
        uni = self._uniform
        if uni is not None:
            delay = uni[0] + uni[1] * uni[2]()
        else:
            # The delay key identifies the hop's departure node, so
            # keyed delay models (per-edge jitter) can make specific
            # links slow.
            path = agent.path
            if agent.state is AgentState.CLIMBING:
                key = path[-1].node_id if path else agent.origin.node_id
            elif path:
                key = path[min(agent.pos, len(path) - 1)].node_id
            else:
                key = agent.origin.node_id
            delay = self._sample(key)
        perturb = self._perturb
        if perturb is not None:
            delay = perturb(self.scheduler.now, delay)
        schedule_call = self._schedule_call
        if schedule_call is not None:
            schedule_call(delay, self._dispatch[phase], agent)
        else:
            arrive = self._dispatch[phase]
            self.scheduler.schedule(delay, lambda: arrive(agent))

    def _resume_handoff(self, agent: Agent) -> None:
        """Deferred lock hand-off: resume ``agent`` at ``resume_node``.

        The node travels in the agent's ``resume_node`` slot rather
        than a closure so the fast path can carry the hand-off as a
        plain ``(method, agent)`` pair (an agent has at most one
        hand-off in flight, so the single slot cannot be clobbered).
        """
        node = agent.resume_node
        agent.resume_node = None
        if node is None:
            raise ProtocolError(f"{agent} resumed without a hand-off node")
        self._resumed_at(agent, node)

    def _schedule_resume(self, waiter: Agent, node: TreeNode) -> None:
        # Local computation takes zero time (Section 4.3.1).
        waiter.resume_node = node
        schedule_call = self._schedule_call
        if schedule_call is not None:
            schedule_call(0.0, self._dispatch[_RESUME], waiter)
        else:
            self.scheduler.schedule(0.0, lambda: self._resume_handoff(waiter))

    # ------------------------------------------------------------------
    # Outcome bookkeeping.
    # ------------------------------------------------------------------
    def _deliver(self, agent: Agent, status: OutcomeStatus) -> None:
        """Terminal outcome for an agent that holds no locks."""
        agent.state = AgentState.DONE
        agent.delivered = True
        self.active_agents -= 1
        self._record(Outcome(status, agent.request), agent.callback)

    def _record(self, outcome: Outcome,
                callback: Optional[Callable[[Outcome], None]]) -> None:
        if outcome.status is OutcomeStatus.REJECTED:
            self._ledger.count_reject()
        elif outcome.status is OutcomeStatus.CANCELLED:
            self.cancelled += 1
        elif outcome.status is OutcomeStatus.PENDING:
            self.pending += 1
        self.outcomes.append(outcome)
        if callback is not None:
            callback(outcome)

    def _still_meaningful(self, request: Request) -> bool:
        node = request.node
        if node not in self.tree:
            return False
        kind = request.kind
        if kind is RequestKind.REMOVE_LEAF:
            return not node.is_root and not node.children
        if kind is RequestKind.REMOVE_INTERNAL:
            return not node.is_root and bool(node.children)
        if kind is RequestKind.ADD_INTERNAL:
            return (request.child is not None and request.child.alive
                    and request.child.parent is node)
        return True

    # ------------------------------------------------------------------
    # Tree listener: graceful topology hand-over (Section 4.2).
    # ------------------------------------------------------------------
    def on_add_leaf(self, node: TreeNode) -> None:
        if self.rejecting:
            self.boards.get(node).store.has_reject = True

    def on_add_internal(self, node: TreeNode, parent: TreeNode,
                        child: TreeNode) -> None:
        """Splice: hand the new node's lock to the agent holding the
        child endpoint, if that agent still travels upward."""
        if self.rejecting:
            self.boards.get(node).store.has_reject = True
        child_board = self.boards.peek(child)
        holder = child_board.locked_by if child_board is not None else None
        if holder is None:
            return
        if holder.state not in (AgentState.CLIMBING, AgentState.WAITING):
            # The holder already turned around; it will never pass the
            # new node, which therefore stays unlocked.
            return
        if holder.path and holder.path[-1] is child:
            holder.path.append(node)
            self.boards.get(node).locked_by = holder

    def on_remove_leaf(self, node: TreeNode, parent: TreeNode) -> None:
        self._graceful_removal(node, parent, 0)

    def on_remove_internal(self, node: TreeNode, parent: TreeNode,
                           children: List[TreeNode]) -> None:
        self._graceful_removal(node, parent, len(children))

    def _graceful_removal(self, node: TreeNode, parent: TreeNode,
                          degree: int) -> None:
        board = self.boards.discard(node)
        if board is None:
            return
        parent_board = self.boards.get(parent)
        # Move the package store: O(deg + packages) messages of
        # O(log N) bits (see the discussion following Lemma 4.5).
        if not board.store.is_empty:
            self.counters.relocation_messages += (
                1 + degree + len(board.store.mobile)
            )
            parent_board.store.merge_from(board.store)
        # The deleting agent holds the node's lock and pops it from its
        # path (it proceeds from the parent; one data-move message).
        holder = board.locked_by
        if holder is not None:
            if not holder.path or holder.path[0] is not node:
                raise ProtocolError(
                    f"removed node {node} locked mid-path by {holder}"
                )
            holder.path.pop(0)
            self.counters.relocation_messages += 1
        # Queued agents move to the parent (kept in arrival order).
        for waiter in board.queue:
            self.counters.relocation_messages += 1
            if waiter.path:
                # Mid-climb: it will resume at the parent seamlessly.
                waiter.waiting_at = parent
                parent_board.queue.append(waiter)
            else:
                self._rehome_fresh_waiter(waiter, node, parent, parent_board)
        board.queue.clear()
        # If the parent is currently unlocked (the deleting agent found
        # its permit at the deleted node itself and never locked the
        # parent), the relocated waiters must be dispatched now — no
        # future unlock event would otherwise drain the queue.
        if parent_board.locked_by is None and parent_board.queue:
            waiter = parent_board.queue.popleft()
            parent_board.locked_by = waiter
            self._schedule_resume(waiter, parent)

    def _rehome_fresh_waiter(self, waiter: Agent, removed: TreeNode,
                             parent: TreeNode, parent_board: Whiteboard
                             ) -> None:
        """A waiter that was *created* at the removed node.

        Requests anchored to the removed node lose their meaning
        (Section 4.2) and are cancelled; plain requests are re-homed to
        the parent.
        """
        request = waiter.request
        if request.kind is RequestKind.PLAIN:
            waiter.origin = parent
            request.node = parent
            waiter.waiting_at = parent
            parent_board.queue.append(waiter)
        else:
            self._deliver(waiter, OutcomeStatus.CANCELLED)
