"""Distributed implementation of the (M,W)-Controller (Section 4).

The distributed controller runs on the discrete-event simulator: a
request at node ``u`` spawns a mobile *agent* that climbs toward the
root, locking every node on its way (waiting FIFO at locked nodes),
until it finds a filler node or the root; it then distributes the found
or created package down the locked path (``Proc``), grants the request,
walks back up to the topmost node it reached and descends again,
unlocking.  Every agent hop is one message — Lemma 4.5's accounting.

Graceful topology changes (Section 4.2) are realized by path *splices*:
insertions hand the new node's lock to the unique agent holding the
child endpoint while travelling upward, deletions move packages, queued
agents and the whiteboard to the parent.
"""

from repro.distributed.whiteboard import Whiteboard
from repro.distributed.agent import Agent, AgentState
from repro.distributed.controller import DistributedController
from repro.distributed.broadcast import broadcast_cost, upcast_cost
from repro.distributed.faults import FaultInjector, FaultPlan, parse_fault_spec
from repro.distributed.iterated import DistributedIteratedController
from repro.distributed.adaptive import DistributedAdaptiveController

__all__ = [
    "Whiteboard",
    "Agent",
    "AgentState",
    "DistributedController",
    "DistributedIteratedController",
    "DistributedAdaptiveController",
    "broadcast_cost",
    "upcast_cost",
    "FaultPlan",
    "FaultInjector",
    "parse_fault_spec",
]
