"""Message-delay models for the asynchronous network simulation.

Section 2.1 of the paper assumes messages incur an *arbitrary but finite*
delay.  The correctness proofs quantify over all such delay assignments,
so exercising several delay distributions (including a heavy-tailed one
that creates long reorderings) gives the property tests real adversarial
power.  All models draw from a private ``random.Random`` so that a seed
fully determines the execution.

``sample`` takes an optional ``key`` (the distributed engine passes the
id of the node a hop departs from): the base distributions ignore it,
while :class:`PerEdgeJitterDelay` uses it to make *specific links*
persistently slow — the "one bad cable" regime — and
:class:`BurstStallDelay` models network-wide stall windows where every
in-flight message slows down at once.  Both wrap any base model, so the
adversarial regimes compose with the base distributions.
"""

import random
import zlib
from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.errors import SimulationError


class DelayModel:
    """Base class: maps each message send to a positive finite delay."""

    def sample(self, key: Optional[Hashable] = None) -> float:
        raise NotImplementedError

    def split(self, salt: int) -> "DelayModel":
        """Derive an independent model (used per-channel if desired)."""
        raise NotImplementedError


class UnitDelay(DelayModel):
    """Every message takes exactly one time unit (synchronous-like).

    Useful for debugging: with unit delays the execution is close to a
    round-based schedule.
    """

    def sample(self, key: Optional[Hashable] = None) -> float:
        return 1.0

    def split(self, salt: int) -> "UnitDelay":
        return UnitDelay()


class UniformDelay(DelayModel):
    """Delays drawn uniformly from ``[low, high]``."""

    def __init__(self, seed: int = 0, low: float = 0.5,
                 high: float = 1.5) -> None:
        if low <= 0 or high < low:
            raise SimulationError(f"invalid delay bounds [{low}, {high}]")
        self._rng = random.Random(seed)
        self._low = low
        self._high = high
        self._seed = seed
        # sample() below is random.Random.uniform inlined: the same
        # ``a + (b - a) * random()`` expression on the same generator,
        # so the draws are bit-identical — minus one method call per
        # hop on the simulator's hot path.
        self._width = high - low
        self._random = self._rng.random

    def sample(self, key: Optional[Hashable] = None) -> float:
        return self._low + self._width * self._random()

    def hot_sampler(self) -> Tuple[float, float, Callable[[], float]]:
        """``(low, width, random)`` for call-free inline sampling.

        Hot loops (the distributed fast path) compute
        ``low + width * random()`` themselves, which is exactly
        :meth:`sample`'s expression on the same generator — the draw
        sequence is bit-identical, minus one method call per message.
        """
        return self._low, self._width, self._random

    def split(self, salt: int) -> "UniformDelay":
        return UniformDelay(self._seed ^ (salt * 0x9E3779B9), self._low, self._high)


class HeavyTailDelay(DelayModel):
    """Pareto-ish delays: mostly fast, occasionally very slow messages.

    This produces deep reorderings between concurrent agents, which is the
    adversarial regime the locking discipline of Section 4.3 must survive.
    ``cap`` keeps delays finite as the model requires.
    """

    def __init__(self, seed: int = 0, shape: float = 1.5,
                 cap: float = 50.0) -> None:
        if shape <= 0 or cap <= 0:
            raise SimulationError("shape and cap must be positive")
        self._rng = random.Random(seed)
        self._shape = shape
        self._cap = cap
        self._seed = seed

    def sample(self, key: Optional[Hashable] = None) -> float:
        value = self._rng.paretovariate(self._shape)
        return min(value, self._cap)

    def split(self, salt: int) -> "HeavyTailDelay":
        return HeavyTailDelay(self._seed ^ (salt * 0x9E3779B9), self._shape, self._cap)


class PerEdgeJitterDelay(DelayModel):
    """Per-link multipliers over a base model: a few links are slow.

    Each key (the distributed engine passes the departure node's id, so
    keys identify upward edges) is deterministically assigned a
    multiplier: with probability ``slow_fraction`` the link is slow
    (``slow_factor`` x base delay), otherwise a mild jitter in
    ``[1, 1 + jitter)``.  Assignments are memoized, so a slow link stays
    slow for the whole execution — persistent asymmetry that FIFO-ish
    schedules never produce on their own.
    """

    def __init__(self, base: Optional[DelayModel] = None, seed: int = 0,
                 slow_fraction: float = 0.1, slow_factor: float = 10.0,
                 jitter: float = 0.5) -> None:
        if not 0 <= slow_fraction <= 1:
            raise SimulationError(
                f"slow_fraction must be in [0, 1], got {slow_fraction}")
        if slow_factor < 1 or jitter < 0:
            raise SimulationError("slow_factor must be >= 1 and jitter >= 0")
        self._base = base if base is not None else UniformDelay(seed=seed)
        self._seed = seed
        self._slow_fraction = slow_fraction
        self._slow_factor = slow_factor
        self._jitter = jitter
        self._multipliers: Dict[Hashable, float] = {}

    def _multiplier(self, key: Hashable) -> float:
        factor = self._multipliers.get(key)
        if factor is None:
            # crc32, not hash(): str keys must map to the same link
            # multiplier in every process (PYTHONHASHSEED salts hash()).
            key_mix = zlib.crc32(repr(key).encode())
            rng = random.Random((self._seed * 0x9E3779B9) ^ key_mix)
            if rng.random() < self._slow_fraction:
                factor = self._slow_factor
            else:
                factor = 1.0 + rng.random() * self._jitter
            self._multipliers[key] = factor
        return factor

    def sample(self, key: Optional[Hashable] = None) -> float:
        value = self._base.sample(key)
        if key is None:
            return value
        return value * self._multiplier(key)

    def split(self, salt: int) -> "PerEdgeJitterDelay":
        return PerEdgeJitterDelay(
            self._base.split(salt), self._seed ^ (salt * 0x9E3779B9),
            self._slow_fraction, self._slow_factor, self._jitter)


class BurstStallDelay(DelayModel):
    """Periodic network-wide stall bursts over a base model.

    Samples cycle through windows of ``period`` draws; the last
    ``burst`` draws of each window are multiplied by ``factor``.  During
    a burst *every* message in the system slows down together — the
    correlated-stall regime (a GC pause, a congested uplink) that
    independent per-message draws cannot express.
    """

    def __init__(self, base: Optional[DelayModel] = None, seed: int = 0,
                 period: int = 100, burst: int = 15, factor: float = 20.0) -> None:
        if period <= 0 or not 0 <= burst <= period or factor < 1:
            raise SimulationError(
                f"invalid burst parameters (period={period}, burst={burst}, "
                f"factor={factor})")
        self._base = base if base is not None else UniformDelay(seed=seed)
        self._seed = seed
        self._period = period
        self._burst = burst
        self._factor = factor
        self._count = 0

    def sample(self, key: Optional[Hashable] = None) -> float:
        value = self._base.sample(key)
        position = self._count % self._period
        self._count += 1
        if position >= self._period - self._burst:
            value *= self._factor
        return value

    def split(self, salt: int) -> "BurstStallDelay":
        return BurstStallDelay(
            self._base.split(salt), self._seed ^ (salt * 0x9E3779B9),
            self._period, self._burst, self._factor)


DELAY_MODELS = ("unit", "uniform", "heavytail", "jitter", "burst")


def make_delay_model(name: str, seed: int = 0) -> DelayModel:
    """Instantiate a delay model by registry name."""
    if name == "unit":
        return UnitDelay()
    if name == "uniform":
        return UniformDelay(seed=seed)
    if name == "heavytail":
        return HeavyTailDelay(seed=seed)
    if name == "jitter":
        return PerEdgeJitterDelay(UniformDelay(seed=seed), seed=seed)
    if name == "burst":
        return BurstStallDelay(UniformDelay(seed=seed), seed=seed)
    raise SimulationError(
        f"unknown delay model {name!r}; known: {', '.join(DELAY_MODELS)}")
