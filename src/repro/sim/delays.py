"""Message-delay models for the asynchronous network simulation.

Section 2.1 of the paper assumes messages incur an *arbitrary but finite*
delay.  The correctness proofs quantify over all such delay assignments,
so exercising several delay distributions (including a heavy-tailed one
that creates long reorderings) gives the property tests real adversarial
power.  All models draw from a private ``random.Random`` so that a seed
fully determines the execution.
"""

import random

from repro.errors import SimulationError


class DelayModel:
    """Base class: maps each message send to a positive finite delay."""

    def sample(self) -> float:
        raise NotImplementedError

    def split(self, salt: int) -> "DelayModel":
        """Derive an independent model (used per-channel if desired)."""
        raise NotImplementedError


class UnitDelay(DelayModel):
    """Every message takes exactly one time unit (synchronous-like).

    Useful for debugging: with unit delays the execution is close to a
    round-based schedule.
    """

    def sample(self) -> float:
        return 1.0

    def split(self, salt: int) -> "UnitDelay":
        return UnitDelay()


class UniformDelay(DelayModel):
    """Delays drawn uniformly from ``[low, high]``."""

    def __init__(self, seed: int = 0, low: float = 0.5, high: float = 1.5):
        if low <= 0 or high < low:
            raise SimulationError(f"invalid delay bounds [{low}, {high}]")
        self._rng = random.Random(seed)
        self._low = low
        self._high = high
        self._seed = seed

    def sample(self) -> float:
        return self._rng.uniform(self._low, self._high)

    def split(self, salt: int) -> "UniformDelay":
        return UniformDelay(self._seed ^ (salt * 0x9E3779B9), self._low, self._high)


class HeavyTailDelay(DelayModel):
    """Pareto-ish delays: mostly fast, occasionally very slow messages.

    This produces deep reorderings between concurrent agents, which is the
    adversarial regime the locking discipline of Section 4.3 must survive.
    ``cap`` keeps delays finite as the model requires.
    """

    def __init__(self, seed: int = 0, shape: float = 1.5, cap: float = 50.0):
        if shape <= 0 or cap <= 0:
            raise SimulationError("shape and cap must be positive")
        self._rng = random.Random(seed)
        self._shape = shape
        self._cap = cap
        self._seed = seed

    def sample(self) -> float:
        value = self._rng.paretovariate(self._shape)
        return min(value, self._cap)

    def split(self, salt: int) -> "HeavyTailDelay":
        return HeavyTailDelay(self._seed ^ (salt * 0x9E3779B9), self._shape, self._cap)
