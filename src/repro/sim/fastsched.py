"""The FIFO fast path: a flat record heap for the simulator.

:class:`FastScheduler` is a drop-in replacement for
:class:`repro.sim.scheduler.Scheduler` restricted to the FIFO policy
(pop by ``(time, seq)``), engineered for the distributed engine's hot
loop.  The reference scheduler pays, per event, one ``Event`` dataclass
allocation, one closure allocation at the call site, and rich
``(time, seq)`` comparisons through the dataclass-generated ``__lt__``
on every heap sift.  The fast path replaces all of that with a heap of
plain ``(time, seq, fn, arg)`` tuples:

* tuple comparison runs at C speed and never reaches ``fn``/``arg``
  because the global sequence counter is unique — the pop order is
  bit-identical to the reference FIFO ``(time, seq)`` order;
* :meth:`schedule_call` is the lean entry point: callers pass a
  pre-bound callable and its single argument (the distributed
  controller passes its phase-code dispatch targets and the hopping
  agent), so the only allocation per event is the one compact record
  tuple — no ``Event`` object, no closure, no ``__dict__``;
* :meth:`schedule` keeps the reference API for cold paths (request
  arrivals, fault storms): it returns a cancellable
  :class:`FastEvent` handle (the record carries ``None`` in the ``fn``
  slot and the handle in the ``arg`` slot), and cancellation is a
  **tombstone** — the record stays queued and the drain loop skips it.

This layout is profile-driven: a bucketed calendar queue (per-timestamp
slot arrays with a heap over distinct stamps) was built and measured
first, but under the engine's continuous delay models nearly every
stamp is distinct — on the ``deep_burst`` profile the stamp heap saw
one push per *event* — so the per-bucket bookkeeping (dict insert and
delete, bucket recycling) costs more than the heap sift it was meant to
amortize.  The flat record heap keeps the same interface and ordering
contract and is strictly faster on the measured workloads.

Batched draining: :meth:`step_batch` executes up to a budget of events
in one tight loop with hoisted locals, so a zero-delay chain (a climb
wave's lock hand-offs) or a burst of arrivals runs without returning to
Python glue between events.  The session layer pumps through
:meth:`pump` (one :data:`PUMP_BATCH` batch per call), amortizing its
lock acquisition and drain-generator frames across the batch.

Equivalence contract: driving the same workload through a
:class:`FastScheduler` and a FIFO-policy reference scheduler executes
the identical callback sequence, so every downstream artefact —
outcome tallies, message counters, kernel traces, sampled delays — is
bit-identical.  ``tests/distributed/test_fast_path.py`` asserts this
per catalogue scenario; ``tests/sim/test_fastsched.py`` asserts the
raw pop-order equivalence on randomized workloads.

Non-FIFO schedule policies cannot use this engine (they pop in
non-chronological orders); :func:`warn_fast_path_fallback` is the
shared one-line warning emitted when a caller asked for the fast path
but a reference scheduler must be used instead.
"""

import warnings
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = [
    "FastEvent",
    "FastPathFallbackWarning",
    "FastScheduler",
    "warn_fast_path_fallback",
]

#: Events executed per :meth:`FastScheduler.pump` call: large enough to
#: amortize the caller's per-pump overhead (locks, generator frames)
#: across a batch, small enough that settlement streams stay live.
PUMP_BATCH = 1024


class FastPathFallbackWarning(RuntimeWarning):
    """The fast path was requested but the reference engine runs.

    Emitted exactly once per call site (the default ``"default"``
    warning filter deduplicates by location); behaviour is unchanged —
    the run proceeds on the reference scheduler.
    """


def warn_fast_path_fallback(reason: str) -> None:
    """Warn that ``fast_path=True`` fell back to the reference engine."""
    warnings.warn(
        f"fast_path=True ignored: {reason}; falling back to the "
        "reference scheduler (behaviour is unchanged)",
        FastPathFallbackWarning,
        stacklevel=3,
    )


class FastEvent:
    """Cancellable handle for events queued via :meth:`FastScheduler.schedule`.

    API-compatible with :class:`repro.sim.scheduler.Event` for the
    ``time`` / ``cancelled`` / :meth:`cancel` surface.  Cancellation is
    a tombstone: the heap record stays where it is and the drain loop
    skips it, so cancel is O(1) and allocates nothing.
    """

    __slots__ = ("time", "fn", "cancelled", "_consumed", "_sched")

    def __init__(self, time: float, fn: Callable[[], None],
                 sched: "FastScheduler") -> None:
        self.time = time
        self.fn = fn
        self.cancelled = False
        self._consumed = False
        self._sched = sched

    def cancel(self) -> None:
        """Tombstone the event; idempotent, late cancels are no-ops."""
        if self.cancelled or self._consumed:
            return
        self.cancelled = True
        self._sched._tombstones += 1

    def __repr__(self) -> str:
        state = ("cancelled" if self.cancelled
                 else "consumed" if self._consumed else "pending")
        return f"<FastEvent t={self.time} {state}>"


class FastScheduler:
    """Deterministic FIFO discrete-event scheduler, record-heap backed.

    Implements the reference :class:`~repro.sim.scheduler.Scheduler`
    surface (``now`` / ``schedule`` / ``schedule_at`` / ``step`` /
    ``run`` / ``pending`` / ``executed`` / ``pump``) plus the
    allocation-lean :meth:`schedule_call` hot path.  FIFO only: there
    is no ``policy`` knob — non-FIFO exploration runs stay on the
    reference scheduler.
    """

    __slots__ = ("_now", "_tombstones", "executed", "_max_events", "_seq",
                 "_heap")

    def __init__(self, max_events: int = 50_000_000) -> None:
        self._now = 0.0
        self._tombstones = 0
        self.executed = 0
        self._max_events = max_events
        self._seq = 0
        # (time, seq, fn, arg) records; fn is None for handle-carrying
        # records whose arg is the FastEvent.
        self._heap: List[Tuple[float, int, Optional[Callable[..., None]],
                               Any]] = []

    # ------------------------------------------------------------------
    # Introspection (reference API).
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1)).

        Exact at every instant, including from a callback running
        inside :meth:`step_batch`: the count is derived as heap length
        minus live tombstones, both of which update record-by-record
        at C speed — there is no batched write-back to flush.  (The
        event being executed right now is not pending, matching the
        reference scheduler, whose queue also pops before the call.)
        """
        return len(self._heap) - self._tombstones

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------
    def schedule_call(self, delay: float, fn: Callable[[Any], None],
                      arg: Any) -> None:
        """Lean hot path: run ``fn(arg)`` ``delay`` time units from now.

        No handle is returned; the only allocation is the record tuple.
        Callers that may need to cancel use :meth:`schedule` instead.
        ``fn`` must be pre-bound (the distributed controller caches its
        phase-dispatch bound methods once at construction).
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (self._now + delay, seq, fn, arg))

    def schedule(self, delay: float, fn: Callable[[], None]) -> FastEvent:
        """Reference-compatible path: returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        event = FastEvent(time, fn, self)
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (time, seq, None, event))
        return event

    def schedule_at(self, time: float, fn: Callable[[], None]) -> FastEvent:
        """Schedule ``fn`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}")
        return self.schedule(time - self._now, fn)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def step_batch(self, budget: int = PUMP_BATCH) -> int:
        """Execute up to ``budget`` events; returns how many ran.

        The tight loop of the whole engine: one heap pop, one unpack
        and one call per event, tombstones skipped in place.  ``_now``
        is updated per event (callbacks compute their stamps from it);
        ``executed`` is settled at the batch boundary — written back in
        ``finally`` even when a callback raises, so the caller can keep
        pumping the remainder.  ``pending()`` needs no write-back at
        all: it derives from the heap length and the tombstone count,
        which this loop maintains exactly, so any reader — a
        same-thread callback mid-batch included — sees exact counts.
        """
        heap = self._heap
        pop = heappop
        max_events = self._max_events
        executed = self.executed
        ran = 0
        try:
            while ran < budget and heap:
                time, _seq, fn, arg = pop(heap)
                if fn is None:
                    if arg.cancelled:
                        self._tombstones -= 1
                        continue
                    arg._consumed = True
                    self._now = time
                    executed += 1
                    if executed > max_events:
                        raise SimulationError(
                            f"event budget exceeded ({max_events} events); "
                            "likely livelock in protocol code")
                    ran += 1
                    arg.fn()
                else:
                    self._now = time
                    executed += 1
                    if executed > max_events:
                        raise SimulationError(
                            f"event budget exceeded ({max_events} events); "
                            "likely livelock in protocol code")
                    ran += 1
                    fn(arg)
        finally:
            self.executed = executed
        return ran

    def step(self) -> bool:
        """Execute the next pending event (reference API)."""
        return self.step_batch(1) == 1

    def pump(self) -> bool:
        """Session pump hook: run one batch; ``False`` when idle."""
        return self.step_batch(PUMP_BATCH) > 0

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains (or the next event is past
        ``until``)."""
        heap = self._heap
        if until is None:
            while heap:
                self.step_batch(1 << 30)
            return
        # The bounded walk peeks before every pop (an event past
        # ``until`` must stay queued), so it cannot share step_batch's
        # pop-first loop; this path serves tests and mid-flight audits,
        # not the hot pump.
        pop = heappop
        max_events = self._max_events
        while heap:
            record = heap[0]
            if record[0] > until:
                return
            pop(heap)
            fn = record[2]
            if fn is None:
                event = record[3]
                if event.cancelled:
                    self._tombstones -= 1
                    continue
                event._consumed = True
                fn = event.fn
                self._now = record[0]
                self.executed += 1
                if self.executed > max_events:
                    raise SimulationError(
                        f"event budget exceeded ({max_events} events); "
                        "likely livelock in protocol code")
                fn()
            else:
                self._now = record[0]
                self.executed += 1
                if self.executed > max_events:
                    raise SimulationError(
                        f"event budget exceeded ({max_events} events); "
                        "likely livelock in protocol code")
                fn(record[3])
