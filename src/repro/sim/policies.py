"""Schedule policies: which pending event runs next.

The asynchronous model of Section 2.1 quantifies correctness over *all*
finite message-delay assignments.  In the discrete-event simulator an
event enters the queue only after the event that caused it has run, so
**any** pop order over pending events is a legal asynchronous execution
— the sampled delay times are one particular adversary, not a
constraint.  A :class:`SchedulePolicy` exploits exactly this freedom:
swapping the policy replays the same workload under a different legal
interleaving, which is how one workload becomes thousands of distinct
executions (one per policy x seed).

Policies:

* ``fifo`` — pop by ``(time, seq)``: the historical deterministic
  schedule, bit-for-bit identical to the pre-policy scheduler;
* ``random`` — pop a uniformly random pending event (seeded), the
  schedule-exploration workhorse;
* ``lifo`` — pop the most recently scheduled event: depth-biased, one
  agent's causal chain is driven as deep as possible before siblings
  advance;
* ``adversary`` — pop the maximum ``(time, seq)``: the delay adversary,
  maximally inverting the FIFO order (whatever the delay model wanted
  to happen last happens first, subject only to causality).

Under non-FIFO policies simulated time is kept monotone by clamping
(``now`` never runs backwards); the event ``time`` stamps become
advisory, exactly as the arbitrary-delay model prescribes.
"""

import heapq
import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.sim.scheduler import Event


class SchedulePolicy:
    """Strategy owning the pending-event collection of a scheduler.

    Subclasses implement ``push``/``pop``/``peek``/``__len__``.
    ``pop``/``peek`` may return cancelled events; the scheduler skips
    them (cancellation bookkeeping lives in the scheduler).
    """

    name = "base"

    def push(self, event: "Event") -> None:
        raise NotImplementedError

    def pop(self) -> "Event":
        raise NotImplementedError

    def peek(self) -> "Optional[Event]":
        """The event :meth:`pop` would return next, without removing it."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FifoPolicy(SchedulePolicy):
    """Minimum ``(time, seq)`` first — the deterministic baseline."""

    name = "fifo"

    def __init__(self) -> None:
        self._heap: "List[Event]" = []

    def push(self, event: "Event") -> None:
        heapq.heappush(self._heap, event)

    def pop(self) -> "Event":
        return heapq.heappop(self._heap)

    def peek(self) -> "Optional[Event]":
        return self._heap[0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)


class AdversaryPolicy(SchedulePolicy):
    """Maximum ``(time, seq)`` first — the deterministic delay adversary.

    Every pair of causally independent events is executed in the
    *opposite* of their FIFO order, the maximal legal reordering.
    """

    name = "adversary"

    def __init__(self) -> None:
        self._heap: "List[Tuple[float, int, Event]]" = []

    def push(self, event: "Event") -> None:
        heapq.heappush(self._heap, (-event.time, -event.seq, event))

    def pop(self) -> "Event":
        return heapq.heappop(self._heap)[2]

    def peek(self) -> "Optional[Event]":
        return self._heap[0][2] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)


class LifoPolicy(SchedulePolicy):
    """Most recently scheduled first — depth-biased exploration."""

    name = "lifo"

    def __init__(self) -> None:
        self._stack: "List[Event]" = []

    def push(self, event: "Event") -> None:
        self._stack.append(event)

    def pop(self) -> "Event":
        return self._stack.pop()

    def peek(self) -> "Optional[Event]":
        return self._stack[-1] if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)


class RandomPolicy(SchedulePolicy):
    """Uniformly random pending event (seeded, swap-remove pops).

    ``peek`` pre-draws the next victim so that ``peek``/``pop`` agree;
    the draw is consumed by the following ``pop``.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._events: "List[Event]" = []
        self._next: Optional[int] = None

    def push(self, event: "Event") -> None:
        self._events.append(event)
        self._next = None

    def _draw(self) -> int:
        if self._next is None:
            self._next = self._rng.randrange(len(self._events))
        return self._next

    def pop(self) -> "Event":
        index = self._draw()
        self._next = None
        events = self._events
        event = events[index]
        last = events.pop()
        if index < len(events):
            events[index] = last
        return event

    def peek(self) -> "Optional[Event]":
        if not self._events:
            return None
        return self._events[self._draw()]

    def __len__(self) -> int:
        return len(self._events)


_POLICY_FACTORIES: Dict[str, Callable[[int], SchedulePolicy]] = {
    "fifo": lambda seed: FifoPolicy(),
    "random": lambda seed: RandomPolicy(seed),
    "lifo": lambda seed: LifoPolicy(),
    "adversary": lambda seed: AdversaryPolicy(),
}

SCHEDULE_POLICIES = tuple(_POLICY_FACTORIES)


def make_policy(name: str, seed: int = 0) -> SchedulePolicy:
    """Instantiate a policy by registry name (seed used where relevant)."""
    try:
        factory = _POLICY_FACTORIES[name]
    except KeyError:
        raise SimulationError(
            f"unknown schedule policy {name!r}; "
            f"known: {', '.join(SCHEDULE_POLICIES)}"
        ) from None
    return factory(seed)
