"""Structured trace log for simulations.

A :class:`Tracer` collects tagged events (message sends, lock acquisitions,
grants, topology changes...).  Tests use it to assert ordering properties
("no grant after termination"), and benchmark harnesses use it to derive
per-phase message counts without instrumenting protocol code twice.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class TraceEvent:
    """One trace record: simulated time, a tag, and free-form details."""

    time: float
    tag: str
    details: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Append-only trace collector with simple query helpers.

    Tracing defaults to disabled so that large benchmark runs pay nothing;
    tests construct a ``Tracer(enabled=True)``.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def emit(self, time: float, tag: str, **details: Any) -> None:
        """Record one event (no-op when disabled)."""
        if self.enabled:
            self.events.append(TraceEvent(time=time, tag=tag, details=details))

    def with_tag(self, tag: str) -> Iterator[TraceEvent]:
        """Iterate over events carrying ``tag``."""
        return (e for e in self.events if e.tag == tag)

    def count(self, tag: str) -> int:
        """Number of recorded events with ``tag``."""
        return sum(1 for e in self.events if e.tag == tag)

    def last(self, tag: str) -> Optional[TraceEvent]:
        """Most recent event with ``tag``, or ``None``."""
        for event in reversed(self.events):
            if event.tag == tag:
                return event
        return None

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()
