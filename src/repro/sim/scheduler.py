"""Event-driven simulator core.

The scheduler maintains a collection of pending events; a pluggable
:class:`~repro.sim.policies.SchedulePolicy` decides which pending event
runs next.  The default FIFO policy pops by ``(time, sequence_number)``
— deterministic chronological order with insertion-order tie-breaks,
bit-for-bit the historical behaviour — while the exploration policies
(random / lifo / adversary) replay the same workload under other legal
asynchronous interleavings (see ``repro.sim.policies`` for why every
pop order is legal).

The simulator is deliberately minimal: the distributed layer builds
message passing, agents and locks on top of :meth:`Scheduler.schedule`.
"""

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.policies import FifoPolicy, SchedulePolicy


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that FIFO pops them in
    deterministic chronological order.  ``fn`` is excluded from the
    comparison.
    """

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    # Set once the scheduler has executed the event; a late cancel() is
    # then a no-op.
    _consumed: bool = field(default=False, compare=False, repr=False)
    # Scheduler bookkeeping hook (keeps the live-event counter exact);
    # invoked at most once thanks to the idempotence guard in cancel().
    _canceller: Optional[Callable[[], None]] = field(
        default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped.

        Idempotent: cancelling an already-cancelled (or already-run)
        event is a no-op, so double-cancel never corrupts the
        scheduler's live-event accounting.
        """
        if self.cancelled or self._consumed:
            return
        self.cancelled = True
        if self._canceller is not None:
            self._canceller()


class Scheduler:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    max_events:
        Safety budget: :meth:`run` raises :class:`SimulationError` if more
        than this many events are executed, which catches accidental
        livelocks in protocol code during tests.
    policy:
        The schedule policy choosing the next pending event.  Defaults to
        FIFO (the historical deterministic order).
    """

    def __init__(self, max_events: int = 50_000_000,
                 policy: Optional[SchedulePolicy] = None) -> None:
        self._policy = policy if policy is not None else FifoPolicy()
        self._seq = 0
        self._now = 0.0
        self._max_events = max_events
        self._live = 0
        self.executed = 0
        # The live-event bookkeeping hook handed to every event.  Bound
        # once: reading ``self._on_cancel`` per schedule() would
        # allocate a fresh bound-method object per event, pure waste on
        # the hot path (events are rarely cancelled).
        self._cancel_hook = self._on_cancel

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def policy(self) -> SchedulePolicy:
        return self._policy

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` time units from now.

        Returns the :class:`Event`, which the caller may cancel.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(time=self._now + delay, seq=self._seq, fn=fn)
        event._canceller = self._cancel_hook
        self._seq += 1
        self._live += 1
        self._policy.push(event)
        return event

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        return self.schedule(time - self._now, fn)

    def step(self) -> bool:
        """Execute the next pending event (per the schedule policy).

        Returns ``False`` when the event queue is empty, ``True`` otherwise.
        """
        policy = self._policy
        while len(policy):
            event = policy.pop()
            if event.cancelled:
                continue
            event._consumed = True
            self._live -= 1
            # Non-FIFO policies pop out of time order; ``now`` stays
            # monotone (the stamps are advisory under those policies).
            if event.time > self._now:
                self._now = event.time
            self.executed += 1
            if self.executed > self._max_events:
                raise SimulationError(
                    f"event budget exceeded ({self._max_events} events); "
                    "likely livelock in protocol code"
                )
            event.fn()
            return True
        return False

    def pump(self) -> bool:
        """Session pump hook: one event per pump on the reference
        engine (:class:`repro.sim.fastsched.FastScheduler` overlays
        this with batched draining)."""
        return self.step()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains (or the next event is past ``until``)."""
        policy = self._policy
        while len(policy):
            if until is not None:
                head = policy.peek()
                while head is not None and head.cancelled:
                    policy.pop()
                    head = policy.peek()
                if head is None or head.time > until:
                    return
            self.step()

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    def _on_cancel(self) -> None:
        self._live -= 1
