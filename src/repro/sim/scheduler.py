"""Event-driven simulator core.

The scheduler maintains a priority queue of events keyed by
``(time, sequence_number)``.  The sequence number breaks ties
deterministically in insertion order, which makes every simulation run
reproducible for a fixed seed and workload.

The simulator is deliberately minimal: the distributed layer builds
message passing, agents and locks on top of :meth:`Scheduler.schedule`.
"""

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that the event heap pops them in
    deterministic chronological order.  ``fn`` is excluded from the
    comparison.
    """

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        self.cancelled = True


class Scheduler:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    max_events:
        Safety budget: :meth:`run` raises :class:`SimulationError` if more
        than this many events are executed, which catches accidental
        livelocks in protocol code during tests.
    """

    def __init__(self, max_events: int = 50_000_000):
        self._heap: List[Event] = []
        self._seq = 0
        self._now = 0.0
        self._max_events = max_events
        self.executed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` time units from now.

        Returns the :class:`Event`, which the caller may cancel.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(time=self._now + delay, seq=self._seq, fn=fn)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        return self.schedule(time - self._now, fn)

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``False`` when the event queue is empty, ``True`` otherwise.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.executed += 1
            if self.executed > self._max_events:
                raise SimulationError(
                    f"event budget exceeded ({self._max_events} events); "
                    "likely livelock in protocol code"
                )
            event.fn()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains (or simulated time passes ``until``)."""
        while self._heap:
            if until is not None and self._heap[0].time > until:
                return
            self.step()

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)
