"""Discrete-event simulation substrate.

The paper assumes the standard asynchronous point-to-point message-passing
model (Section 2.1): messages incur arbitrary but finite delays.  This
package provides a deterministic discrete-event simulator that realizes
that model: events are (time, sequence) ordered, message delays are drawn
from seeded delay models, and the whole execution is reproducible from the
seed.
"""

from repro.sim.scheduler import Event, Scheduler
from repro.sim.fastsched import (
    FastEvent,
    FastPathFallbackWarning,
    FastScheduler,
    warn_fast_path_fallback,
)
from repro.sim.delays import (
    DELAY_MODELS,
    BurstStallDelay,
    DelayModel,
    HeavyTailDelay,
    PerEdgeJitterDelay,
    UniformDelay,
    UnitDelay,
    make_delay_model,
)
from repro.sim.policies import (
    SCHEDULE_POLICIES,
    AdversaryPolicy,
    FifoPolicy,
    LifoPolicy,
    RandomPolicy,
    SchedulePolicy,
    make_policy,
)
from repro.sim.tracing import TraceEvent, Tracer

__all__ = [
    "Event",
    "Scheduler",
    "FastEvent",
    "FastPathFallbackWarning",
    "FastScheduler",
    "warn_fast_path_fallback",
    "DelayModel",
    "UnitDelay",
    "UniformDelay",
    "HeavyTailDelay",
    "PerEdgeJitterDelay",
    "BurstStallDelay",
    "DELAY_MODELS",
    "make_delay_model",
    "SchedulePolicy",
    "FifoPolicy",
    "RandomPolicy",
    "LifoPolicy",
    "AdversaryPolicy",
    "SCHEDULE_POLICIES",
    "make_policy",
    "TraceEvent",
    "Tracer",
]
