"""Discrete-event simulation substrate.

The paper assumes the standard asynchronous point-to-point message-passing
model (Section 2.1): messages incur arbitrary but finite delays.  This
package provides a deterministic discrete-event simulator that realizes
that model: events are (time, sequence) ordered, message delays are drawn
from seeded delay models, and the whole execution is reproducible from the
seed.
"""

from repro.sim.scheduler import Event, Scheduler
from repro.sim.delays import (
    DelayModel,
    UnitDelay,
    UniformDelay,
    HeavyTailDelay,
)
from repro.sim.tracing import TraceEvent, Tracer

__all__ = [
    "Event",
    "Scheduler",
    "DelayModel",
    "UnitDelay",
    "UniformDelay",
    "HeavyTailDelay",
    "TraceEvent",
    "Tracer",
]
